package perfsim

import (
	"math"

	"repro/internal/randx"
)

// mode is one discrete performance mode of a benchmark on a system
// (e.g., a lucky vs. unlucky page allocation, or local vs. remote NUMA
// placement). Center is a relative run-time multiplier (≈1), Sigma the
// lognormal spread within the mode.
type mode struct {
	Weight float64
	Center float64
	Sigma  float64
}

// RuntimeDist is the ground-truth run-time distribution of one benchmark
// on one system: a mixture of lognormal modes in relative time, scaled
// by BaseSeconds, with an optional Pareto straggler tail.
type RuntimeDist struct {
	BaseSeconds float64
	Modes       []mode

	TailProb  float64
	TailAlpha float64
	TailScale float64
}

// RunLatent records the hidden state behind one sampled run. The metric
// generator uses it to correlate counter noise with the run outcome,
// reproducing the physical coupling (a remote-placement run really does
// see more remote-node misses).
type RunLatent struct {
	// Mode is the index of the performance mode the run landed in.
	Mode int
	// Tail is true when the run suffered a straggler excursion.
	Tail bool
	// RelDev is the run's within-mode relative deviation (the lognormal
	// exponent draw), feeding frequency-correlated counter noise.
	RelDev float64
}

// speedFactor converts the benchmark's reference run time to this
// system: compute-bound work scales with ComputeScale, bandwidth-bound
// work with MemBWScale, with cache fit (working set vs. L3) modulating
// how bandwidth-bound the benchmark effectively is on this system.
func speedFactor(w Workload, s *System) float64 {
	missL3 := w.WorkingSetMB / (w.WorkingSetMB + s.L3MB)
	effMem := w.Memory * (0.35 + 0.65*missL3)
	total := w.Compute + effMem + 1e-9
	cShare := w.Compute / total
	mShare := effMem / total
	// Weighted harmonic combination of the two throughput scales.
	//lint:allow floatcheck ComputeScale and MemBWScale come from the static system spec tables, all positive
	return cShare/s.ComputeScale + mShare/s.MemBWScale
}

// NewRuntimeDist derives the ground-truth distribution of w on s.
// The derivation is deterministic: the same (workload, system) pair
// always yields the same distribution, which is what lets a model
// trained on other benchmarks generalize.
func NewRuntimeDist(w Workload, s *System) *RuntimeDist {
	d := &RuntimeDist{BaseSeconds: w.BaseSeconds * speedFactor(w, s)}

	// Within-mode spread: frequency jitter acts on compute-bound work,
	// scheduler jitter on synchronization-heavy work, memory jitter on
	// bandwidth-bound work.
	missL3 := w.WorkingSetMB / (w.WorkingSetMB + s.L3MB)
	// Idiosyncratic factors mix an application-intrinsic hash with a
	// system-salted hash: an application's variability fingerprint
	// transfers across systems (which is what makes use case 2
	// learnable) but not verbatim — a new system genuinely reshapes the
	// distribution, so a model cannot simply copy the source-system
	// histogram. The hash factors also spread widths and geometries
	// across applications with identical coarse characteristics,
	// bounding achievable prediction accuracy as in real populations.
	mix01 := func(salt string) float64 {
		return 0.45*w.hash01(salt) + 0.55*w.hash01(salt+"@"+s.Name)
	}
	mixSigned := func(salt string) float64 {
		return 0.45*w.hashFloat(salt) + 0.55*w.hashFloat(salt+"@"+s.Name)
	}
	sigma := (0.0025 +
		0.028*(s.FreqJitter*w.Compute+s.SchedJitter*w.Sync+s.MemJitter*w.Memory*missL3) +
		0.01*w.GC) * (0.7 + 0.6*mix01("sig"))
	// Modality: page-allocation sensitivity and NUMA placement create
	// discrete modes, scaled by how strongly this system expresses them.
	modality := w.PageSensitivity*s.PageBimodal + 0.8*w.NUMASensitivity*s.NUMAEffect*missL3
	if modality > 1 {
		modality = 1
	}
	numModes := 1
	switch {
	case modality > 0.60:
		numModes = 3
	case modality > 0.24:
		numModes = 2
	}
	// Mode geometry: separation grows with modality; the mixed hashes
	// give each application its own spacing and weights, related but not
	// identical across systems.
	sep := (0.02 + 0.17*modality) * (0.6 + 0.8*mix01("sep"))
	primary := 0.50 + 0.30*mix01("weight") // the largest mode is the fastest
	rest := 1 - primary
	d.Modes = make([]mode, numModes)
	for k := range d.Modes {
		weight := primary
		if k > 0 {
			// Split the remainder with a hash-driven imbalance.
			share := 1.0 / float64(numModes-1)
			tilt := 0.5 * mixSigned("tilt")
			if numModes == 3 {
				if k == 1 {
					share += tilt * share
				} else {
					share -= tilt * share
				}
			}
			weight = rest * share
		}
		d.Modes[k] = mode{
			Weight: weight,
			Center: 1 + float64(k)*sep*(1+0.2*mixSigned("c"+string(rune('0'+k)))),
			Sigma:  sigma * (1 + 0.25*float64(k)), // slower modes are noisier
		}
	}
	// Straggler tail: IO, garbage collection, and intrinsic tail
	// sensitivity produce occasional large excursions.
	tp := 0.06*(w.IO+w.GC) + 0.05*w.TailSensitivity*s.TailScale
	if tp > 0.15 {
		tp = 0.15
	}
	if tp > 0.002 {
		d.TailProb = tp
		d.TailAlpha = 2.5
		d.TailScale = (0.05 + 0.30*w.TailSensitivity) * s.TailScale
	}
	return d
}

// NumModes returns the number of discrete performance modes.
func (d *RuntimeDist) NumModes() int { return len(d.Modes) }

// MeanSeconds returns the analytic mean run time, ignoring the (small)
// tail contribution.
func (d *RuntimeDist) MeanSeconds() float64 {
	var wsum, acc float64
	for _, m := range d.Modes {
		wsum += m.Weight
		acc += m.Weight * m.Center * math.Exp(m.Sigma*m.Sigma/2)
	}
	//lint:allow floatcheck mode weights are positive by construction in NewRuntimeDist, so wsum > 0
	return d.BaseSeconds * acc / wsum
}

// Sample draws one run time in seconds together with its latent state.
func (d *RuntimeDist) Sample(rng *randx.RNG) (float64, RunLatent) {
	weights := make([]float64, len(d.Modes))
	for i, m := range d.Modes {
		weights[i] = m.Weight
	}
	k := rng.Categorical(weights)
	m := d.Modes[k]
	dev := rng.StdNormal()
	rel := m.Center * math.Exp(m.Sigma*dev)
	latent := RunLatent{Mode: k, RelDev: dev}
	if d.TailProb > 0 && rng.Float64() < d.TailProb {
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		//lint:allow floatcheck NewRuntimeDist sets TailAlpha to a positive constant
		e := d.TailScale * (math.Pow(u, -1/d.TailAlpha) - 1)
		// Straggler excursions are bounded in practice (timeouts,
		// retries, scheduler preemption horizons).
		if e > 1.5 {
			e = 1.5
		}
		rel *= 1 + e
		latent.Tail = true
	}
	return d.BaseSeconds * rel, latent
}

// SampleN draws n run times (seconds), discarding latents.
func (d *RuntimeDist) SampleN(rng *randx.RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i], _ = d.Sample(rng)
	}
	return out
}
