package perfsim

// This file embeds Table I of the paper: the 60 benchmarks from seven
// suites used to train and evaluate the predictors. Each benchmark is
// assigned a workload-characteristics vector chosen to reproduce the
// qualitative behavior reported in the paper's figures:
//
//   - SPEC OMP 376 is strongly bimodal with the larger mode faster (Fig. 1);
//   - 359, 304, bt, is, heartwall, spmv have very narrow distributions,
//     with 304 and bt showing closely spaced modes (Figs. 5, 9);
//   - 303, 376, mrigridding, bodytrack, canneal, correlation, histo are
//     wide, several of them multimodal (Figs. 5, 9);
//   - streamcluster is right-skewed with a long tail (Fig. 5);
//   - MLlib benchmarks run on the JVM and inherit GC-driven jitter and
//     stragglers.
//
// The exact numbers are not claimed to match the physical machines —
// they are a synthetic population engineered to span the same taxonomy
// of distribution shapes, which is the property the paper's learning
// problem depends on.

// bench is a compact constructor for suite entries.
func bench(suite, name string, compute, memory, wsMB, branch, fp, par, sync, io, gc, numa, page, tail, base float64) Workload {
	return Workload{
		Suite: suite, Name: name,
		Compute: compute, Memory: memory, WorkingSetMB: wsMB,
		Branch: branch, FPShare: fp, Parallelism: par, Sync: sync,
		IO: io, GC: gc,
		NUMASensitivity: numa, PageSensitivity: page, TailSensitivity: tail,
		BaseSeconds: base,
	}
}

// TableI returns the full benchmark population of the paper's Table I:
// 9 NPB + 9 PARSEC + 5 SPEC OMP + 8 SPEC Accel + 8 Parboil + 10 Rodinia
// + 11 MLlib = 60 benchmarks.
func TableI() []Workload {
	return []Workload{
		// NPB [38] — OpenMP scientific kernels.
		bench("npb", "bt", 0.70, 0.45, 900, 0.15, 0.85, 0.95, 0.10, 0.00, 0, 0.50, 0.48, 0.05, 55),
		bench("npb", "cg", 0.30, 0.85, 1500, 0.20, 0.80, 0.90, 0.25, 0.00, 0, 0.35, 0.10, 0.05, 28),
		bench("npb", "ep", 0.95, 0.05, 16, 0.10, 0.90, 0.98, 0.02, 0.00, 0, 0.00, 0.02, 0.02, 18),
		bench("npb", "ft", 0.55, 0.75, 5200, 0.12, 0.88, 0.92, 0.20, 0.00, 0, 0.45, 0.25, 0.05, 40),
		bench("npb", "is", 0.15, 0.70, 1100, 0.30, 0.05, 0.85, 0.15, 0.00, 0, 0.05, 0.04, 0.03, 4),
		bench("npb", "lu", 0.60, 0.55, 700, 0.18, 0.85, 0.93, 0.30, 0.00, 0, 0.25, 0.20, 0.05, 50),
		bench("npb", "mg", 0.45, 0.80, 3400, 0.10, 0.82, 0.90, 0.18, 0.00, 0, 0.40, 0.30, 0.04, 12),
		bench("npb", "sp", 0.62, 0.60, 800, 0.14, 0.86, 0.94, 0.22, 0.00, 0, 0.30, 0.35, 0.05, 60),
		bench("npb", "ua", 0.50, 0.50, 480, 0.35, 0.75, 0.88, 0.40, 0.00, 0, 0.28, 0.22, 0.08, 45),

		// PARSEC 3.0 [39] — multithreaded desktop/server applications.
		bench("parsec", "blackscholes", 0.85, 0.20, 64, 0.10, 0.90, 0.90, 0.08, 0.02, 0, 0.05, 0.06, 0.03, 15),
		bench("parsec", "bodytrack", 0.55, 0.45, 128, 0.45, 0.60, 0.80, 0.55, 0.05, 0, 0.40, 0.55, 0.15, 25),
		bench("parsec", "canneal", 0.20, 0.95, 2200, 0.55, 0.10, 0.75, 0.35, 0.02, 0, 0.70, 0.60, 0.10, 35),
		bench("parsec", "dedup", 0.35, 0.55, 700, 0.50, 0.05, 0.70, 0.45, 0.45, 0, 0.20, 0.15, 0.25, 20),
		bench("parsec", "fluidanimate", 0.60, 0.50, 500, 0.20, 0.80, 0.92, 0.50, 0.02, 0, 0.35, 0.30, 0.06, 30),
		bench("parsec", "freqmine", 0.45, 0.65, 1200, 0.55, 0.15, 0.85, 0.30, 0.05, 0, 0.30, 0.25, 0.08, 28),
		bench("parsec", "netdedup", 0.30, 0.50, 650, 0.50, 0.05, 0.65, 0.50, 0.60, 0, 0.18, 0.12, 0.30, 22),
		bench("parsec", "streamcluster", 0.25, 0.85, 900, 0.25, 0.55, 0.85, 0.60, 0.05, 0, 0.30, 0.10, 0.75, 32),
		bench("parsec", "swaptions", 0.90, 0.10, 24, 0.15, 0.92, 0.90, 0.06, 0.00, 0, 0.02, 0.05, 0.02, 16),

		// SPEC OMP 2012 [2] — large OpenMP applications.
		bench("specomp", "358", 0.55, 0.60, 2600, 0.20, 0.85, 0.95, 0.25, 0.02, 0, 0.35, 0.30, 0.06, 80),
		bench("specomp", "362", 0.65, 0.50, 1800, 0.25, 0.80, 0.94, 0.30, 0.02, 0, 0.30, 0.20, 0.05, 70),
		bench("specomp", "367", 0.40, 0.70, 4200, 0.30, 0.70, 0.90, 0.35, 0.03, 0, 0.45, 0.40, 0.08, 90),
		bench("specomp", "372", 0.50, 0.65, 3000, 0.15, 0.88, 0.93, 0.20, 0.02, 0, 0.40, 0.35, 0.05, 85),
		bench("specomp", "376", 0.45, 0.75, 5600, 0.22, 0.78, 0.92, 0.30, 0.02, 0, 0.30, 0.78, 0.08, 100),

		// SPEC Accel [40] — accelerator-style kernels (host execution).
		bench("specaccel", "303", 0.35, 0.85, 4800, 0.18, 0.85, 0.90, 0.45, 0.02, 0, 0.65, 0.70, 0.12, 65),
		bench("specaccel", "304", 0.60, 0.55, 1400, 0.12, 0.90, 0.92, 0.10, 0.01, 0, 0.10, 0.45, 0.03, 45),
		bench("specaccel", "353", 0.70, 0.45, 950, 0.10, 0.92, 0.94, 0.15, 0.01, 0, 0.20, 0.18, 0.04, 55),
		bench("specaccel", "354", 0.55, 0.65, 2100, 0.15, 0.85, 0.91, 0.25, 0.02, 0, 0.30, 0.25, 0.06, 60),
		bench("specaccel", "355", 0.45, 0.75, 3300, 0.12, 0.88, 0.90, 0.20, 0.02, 0, 0.35, 0.30, 0.05, 50),
		bench("specaccel", "356", 0.65, 0.50, 1200, 0.14, 0.90, 0.93, 0.18, 0.01, 0, 0.25, 0.22, 0.04, 58),
		bench("specaccel", "359", 0.80, 0.25, 300, 0.08, 0.95, 0.96, 0.05, 0.00, 0, 0.02, 0.03, 0.02, 40),
		bench("specaccel", "363", 0.40, 0.80, 3900, 0.20, 0.80, 0.89, 0.30, 0.03, 0, 0.45, 0.38, 0.08, 75),

		// Parboil [41] — throughput-computing kernels.
		bench("parboil", "bfs", 0.20, 0.75, 600, 0.65, 0.05, 0.80, 0.40, 0.02, 0, 0.40, 0.45, 0.10, 8),
		bench("parboil", "cutcp", 0.80, 0.30, 150, 0.12, 0.90, 0.92, 0.12, 0.01, 0, 0.10, 0.08, 0.03, 14),
		bench("parboil", "histo", 0.25, 0.80, 1000, 0.40, 0.10, 0.85, 0.55, 0.02, 0, 0.60, 0.70, 0.12, 10),
		bench("parboil", "lbm", 0.40, 0.90, 3800, 0.08, 0.85, 0.90, 0.20, 0.02, 0, 0.50, 0.30, 0.06, 35),
		bench("parboil", "mrigridding", 0.35, 0.80, 2400, 0.30, 0.75, 0.88, 0.50, 0.02, 0, 0.55, 0.80, 0.15, 30),
		bench("parboil", "sgemm", 0.85, 0.40, 750, 0.06, 0.95, 0.95, 0.10, 0.01, 0, 0.30, 0.50, 0.04, 12),
		bench("parboil", "spmv", 0.25, 0.85, 1300, 0.35, 0.70, 0.88, 0.18, 0.01, 0, 0.08, 0.05, 0.04, 6),
		bench("parboil", "stencil", 0.50, 0.85, 2800, 0.08, 0.88, 0.92, 0.22, 0.01, 0, 0.40, 0.28, 0.05, 16),

		// Rodinia [42] — heterogeneous-computing benchmarks.
		bench("rodinia", "backprop", 0.55, 0.60, 850, 0.15, 0.85, 0.90, 0.20, 0.01, 0, 0.25, 0.20, 0.05, 9),
		bench("rodinia", "bfs", 0.18, 0.78, 700, 0.68, 0.05, 0.82, 0.38, 0.02, 0, 0.42, 0.40, 0.10, 7),
		bench("rodinia", "heartwall", 0.75, 0.35, 220, 0.20, 0.85, 0.93, 0.08, 0.01, 0, 0.03, 0.04, 0.02, 20),
		bench("rodinia", "hotspot", 0.60, 0.55, 640, 0.10, 0.88, 0.92, 0.15, 0.01, 0, 0.22, 0.25, 0.04, 11),
		bench("rodinia", "kmeans", 0.45, 0.70, 1600, 0.25, 0.75, 0.88, 0.30, 0.05, 0, 0.35, 0.30, 0.08, 13),
		bench("rodinia", "lavaMD", 0.85, 0.30, 380, 0.10, 0.93, 0.95, 0.12, 0.01, 0, 0.12, 0.10, 0.03, 24),
		bench("rodinia", "leukocyte", 0.70, 0.40, 520, 0.18, 0.88, 0.92, 0.15, 0.01, 0, 0.15, 0.15, 0.04, 26),
		bench("rodinia", "ludomp", 0.55, 0.50, 430, 0.22, 0.82, 0.90, 0.35, 0.01, 0, 0.30, 0.40, 0.07, 15),
		bench("rodinia", "particle_filter", 0.40, 0.55, 760, 0.45, 0.65, 0.85, 0.45, 0.03, 0, 0.35, 0.35, 0.12, 18),
		bench("rodinia", "pathfinder", 0.30, 0.72, 980, 0.35, 0.40, 0.86, 0.25, 0.01, 0, 0.28, 0.22, 0.06, 8),

		// MLlib [43] — Spark machine-learning workloads on the JVM.
		bench("mllib", "correlation", 0.35, 0.70, 2400, 0.40, 0.55, 0.80, 0.45, 0.20, 0.65, 0.45, 0.40, 0.35, 30),
		bench("mllib", "dtclassifier", 0.40, 0.60, 1700, 0.55, 0.45, 0.78, 0.40, 0.18, 0.55, 0.35, 0.35, 0.30, 26),
		bench("mllib", "fmclassifier", 0.50, 0.55, 1400, 0.45, 0.60, 0.80, 0.38, 0.15, 0.50, 0.30, 0.28, 0.28, 28),
		bench("mllib", "gbtclassifier", 0.45, 0.58, 1900, 0.58, 0.50, 0.76, 0.48, 0.18, 0.60, 0.38, 0.42, 0.32, 38),
		bench("mllib", "kmeans", 0.42, 0.68, 2100, 0.35, 0.60, 0.82, 0.42, 0.20, 0.55, 0.40, 0.30, 0.30, 24),
		bench("mllib", "logisticregression", 0.55, 0.52, 1500, 0.30, 0.70, 0.84, 0.35, 0.15, 0.48, 0.28, 0.25, 0.25, 22),
		bench("mllib", "lsvc", 0.58, 0.50, 1300, 0.28, 0.72, 0.84, 0.32, 0.14, 0.45, 0.25, 0.22, 0.24, 21),
		bench("mllib", "mlp", 0.65, 0.45, 1100, 0.25, 0.80, 0.86, 0.30, 0.12, 0.42, 0.22, 0.20, 0.22, 34),
		bench("mllib", "pca", 0.52, 0.62, 2000, 0.22, 0.75, 0.82, 0.35, 0.16, 0.50, 0.32, 0.26, 0.26, 27),
		bench("mllib", "randomforestclassifier", 0.38, 0.62, 2300, 0.62, 0.45, 0.75, 0.50, 0.20, 0.62, 0.40, 0.45, 0.34, 42),
		bench("mllib", "summarizer", 0.30, 0.75, 2600, 0.32, 0.50, 0.80, 0.40, 0.25, 0.58, 0.42, 0.32, 0.36, 18),
	}
}

// FindWorkload returns the Table I workload with the given "suite/name"
// identifier, or false when absent.
func FindWorkload(id string) (Workload, bool) {
	for _, w := range TableI() {
		if w.ID() == id {
			return w, true
		}
	}
	return Workload{}, false
}
