// Package perfsim is the measurement substrate of this reproduction: a
// parametric simulator of application performance variability on
// multi-socket server systems. It stands in for the paper's two physical
// machines (Intel Xeon Platinum 8358 and AMD EPYC 7543), its seven
// benchmark suites (Table I), and Linux perf profiling (Tables II/III).
//
// The simulator is generative: each benchmark is described by an
// application-level workload-characteristics vector (compute/memory/
// branch/synchronization intensity, working set, NUMA and page-placement
// sensitivity, ...), and each system by microarchitectural parameters
// (cores, cache sizes, frequency jitter, scheduler noise, NUMA penalty).
// Their combination determines both
//
//   - the ground-truth run-time distribution of the benchmark on the
//     system — a mixture of shifted lognormal modes with optional
//     Pareto-style straggler tails, covering the distribution-shape
//     taxonomy the paper observes (narrow/wide unimodal, bimodal,
//     trimodal, long-tailed), and
//   - the perf-counter profile of each run, whose per-second rates are
//     deterministic functions of the same characteristics plus per-run
//     noise correlated with the run's latent state (which mode it hit,
//     whether it suffered a straggler event).
//
// Because both outputs derive from the same latent characteristics, the
// paper's learning problem is faithfully reproduced: profiles carry
// signal about distribution shape, and a model trained on other
// benchmarks can generalize to a held-out one without memorizing it.
package perfsim

import "fmt"

// System models one machine under test.
type System struct {
	// Name is the short identifier used throughout the evaluation
	// ("intel" or "amd" for the paper's two machines).
	Name string
	// CPU is a human-readable CPU description.
	CPU string
	// Cores is the total core count across sockets.
	Cores int
	// FreqGHz is the nominal clock frequency.
	FreqGHz float64
	// L1KB, L2KB are per-core data-cache sizes; L3MB is the total
	// last-level cache. Cache sizes shape the per-system miss-rate
	// curves, giving each system a distinct metric signature for the
	// same benchmark (essential for use case 2).
	L1KB, L2KB, L3MB float64
	// ComputeScale and MemBWScale are throughput multipliers relative
	// to the reference (Intel) system for compute-bound and
	// bandwidth-bound work.
	ComputeScale, MemBWScale float64
	// FreqJitter, SchedJitter, and MemJitter are the system's intrinsic
	// relative-noise contributions from dynamic frequency scaling, OS
	// scheduling, and memory-subsystem contention.
	FreqJitter, SchedJitter, MemJitter float64
	// NUMAEffect scales how strongly NUMA-sensitive benchmarks split
	// into distinct placement modes on this system.
	NUMAEffect float64
	// PageBimodal scales how strongly page-allocation-sensitive
	// benchmarks develop discrete performance modes.
	PageBimodal float64
	// TailScale scales the magnitude of straggler tails.
	TailScale float64
	// PipelineWidth is the issue width used for the topdown "slots"
	// metrics.
	PipelineWidth float64
	// MetricNames is the perf metric schema of this system.
	MetricNames []string
}

// NumMetrics returns the length of the system's metric schema.
func (s *System) NumMetrics() int { return len(s.MetricNames) }

// String identifies the system.
func (s *System) String() string { return fmt.Sprintf("%s (%s)", s.Name, s.CPU) }

// NewIntelSystem models the paper's Intel machine: dual-socket Xeon
// Platinum 8358 (2×32 cores, 48 MB L3 per socket, 512 GB DDR4).
func NewIntelSystem() *System {
	return &System{
		Name:          "intel",
		CPU:           "Intel Xeon Platinum 8358",
		Cores:         64,
		FreqGHz:       2.6,
		L1KB:          48,
		L2KB:          1280,
		L3MB:          96, // 48 MB per socket × 2
		ComputeScale:  1.0,
		MemBWScale:    1.0,
		FreqJitter:    0.35,
		SchedJitter:   0.30,
		MemJitter:     0.30,
		NUMAEffect:    0.55,
		PageBimodal:   0.60,
		TailScale:     1.0,
		PipelineWidth: 5,
		MetricNames:   IntelMetricNames,
	}
}

// NewAMDSystem models the paper's AMD machine: dual-socket EPYC 7543
// (2×32 cores, 256 MB L3 per socket, 512 GB DDR4). The chiplet design
// yields a larger effective LLC, slightly higher memory bandwidth, and a
// stronger NUMA/CCX placement effect than the monolithic Intel part.
func NewAMDSystem() *System {
	return &System{
		Name:          "amd",
		CPU:           "AMD EPYC 7543",
		Cores:         64,
		FreqGHz:       2.8,
		L1KB:          32,
		L2KB:          512,
		L3MB:          512, // 256 MB per socket × 2
		ComputeScale:  0.97,
		MemBWScale:    1.12,
		FreqJitter:    0.42,
		SchedJitter:   0.35,
		MemJitter:     0.26,
		NUMAEffect:    0.85,
		PageBimodal:   0.56,
		TailScale:     1.15,
		PipelineWidth: 6,
		MetricNames:   AMDMetricNames,
	}
}
