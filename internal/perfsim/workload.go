package perfsim

import (
	"fmt"
	"hash/fnv"
)

// Workload is the application-level characteristics vector of one
// benchmark. All intensity fields are nominally in [0, 1]; WorkingSetMB
// and BaseSeconds are absolute. These characteristics are properties of
// the application alone — the same Workload drives both systems, which
// is what makes cross-system prediction (use case 2) learnable.
type Workload struct {
	Suite string
	Name  string

	// Compute is arithmetic intensity (useful work per memory access).
	Compute float64
	// Memory is memory-bandwidth pressure.
	Memory float64
	// WorkingSetMB is the resident working-set size.
	WorkingSetMB float64
	// Branch is branch-entropy (unpredictability of control flow).
	Branch float64
	// FPShare is the fraction of instructions that are floating-point.
	FPShare float64
	// Parallelism is the fraction of the node's cores kept busy.
	Parallelism float64
	// Sync is synchronization intensity (barriers, locks, task stealing).
	Sync float64
	// IO is file/network activity.
	IO float64
	// GC is managed-runtime overhead (JIT, garbage collection) — the
	// MLlib suite runs on the JVM.
	GC float64
	// NUMASensitivity is how strongly performance depends on memory
	// placement across sockets/CCXs.
	NUMASensitivity float64
	// PageSensitivity is how strongly performance depends on physical
	// page allocation (cache-conflict luck) — the classic source of
	// discrete performance modes.
	PageSensitivity float64
	// TailSensitivity is the propensity for straggler runs beyond
	// IO/GC effects.
	TailSensitivity float64
	// BaseSeconds is the mean run time on the reference (Intel) system.
	BaseSeconds float64
}

// ID returns the globally unique "suite/name" identifier.
func (w Workload) ID() string { return w.Suite + "/" + w.Name }

// String renders the identifier.
func (w Workload) String() string { return w.ID() }

// Validate sanity-checks the characteristic ranges.
func (w Workload) Validate() error {
	check := func(field string, v, lo, hi float64) error {
		if v < lo || v > hi {
			return fmt.Errorf("perfsim: %s: %s = %v outside [%v, %v]", w.ID(), field, v, lo, hi)
		}
		return nil
	}
	for _, c := range []struct {
		field  string
		v      float64
		lo, hi float64
	}{
		{"Compute", w.Compute, 0, 1},
		{"Memory", w.Memory, 0, 1},
		{"WorkingSetMB", w.WorkingSetMB, 0.001, 1 << 20},
		{"Branch", w.Branch, 0, 1},
		{"FPShare", w.FPShare, 0, 1},
		{"Parallelism", w.Parallelism, 0, 1},
		{"Sync", w.Sync, 0, 1},
		{"IO", w.IO, 0, 1},
		{"GC", w.GC, 0, 1},
		{"NUMASensitivity", w.NUMASensitivity, 0, 1},
		{"PageSensitivity", w.PageSensitivity, 0, 1},
		{"TailSensitivity", w.TailSensitivity, 0, 1},
		{"BaseSeconds", w.BaseSeconds, 0.01, 1e6},
	} {
		if err := check(c.field, c.v, c.lo, c.hi); err != nil {
			return err
		}
	}
	if w.Suite == "" || w.Name == "" {
		return fmt.Errorf("perfsim: workload with empty suite or name: %+v", w)
	}
	return nil
}

// hashFloat returns a deterministic value in [-1, 1] derived from the
// workload identity and a salt. It gives every benchmark a stable,
// unique fingerprint used to perturb metric rates and mode geometry so
// that benchmarks within a suite are related but not identical —
// mirroring how real applications in one suite share structure yet
// differ in detail. The fingerprint is a property of the benchmark, not
// of the system, so it is consistent across systems.
func (w Workload) hashFloat(salt string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(w.Suite))
	_, _ = h.Write([]byte{'/'})
	_, _ = h.Write([]byte(w.Name))
	_, _ = h.Write([]byte{'#'})
	_, _ = h.Write([]byte(salt))
	v := h.Sum64()
	// Map the top 53 bits onto [-1, 1).
	return float64(v>>11)/float64(1<<52) - 1
}

// hash01 returns a deterministic value in [0, 1).
func (w Workload) hash01(salt string) float64 { return (w.hashFloat(salt) + 1) / 2 }
