package randx

import (
	"sync/atomic"
	"time"
)

// Clock is the project's time source abstraction. Production edges read
// the wall clock through SystemClock; everything else receives a Clock
// (or a SetClock lever) so that latency accounting, breaker backoff,
// and timing-dependent behavior replay deterministically in tests.
//
// The nondeterminism analyzer forbids direct time.Now/Since/Until calls
// outside this package; a Clock value is the sanctioned replacement.
type Clock func() time.Time

// SystemClock is the wall clock — the single sanctioned escape hatch
// to ambient time, for process edges (CLI stopwatches, request latency
// measurement) where real time is the point.
var SystemClock Clock = time.Now

// Since returns the elapsed time between t and the clock's current
// reading (the Clock-aware replacement for time.Since).
func (c Clock) Since(t time.Time) time.Duration { return c().Sub(t) }

// FixedClock returns a Clock frozen at t.
func FixedClock(t time.Time) Clock {
	return func() time.Time { return t }
}

// StepClock returns a Clock that reads start, start+step, start+2·step,
// … on successive calls: virtual time that advances only when observed,
// so timing-dependent logic (backoff schedules, uptime accounting)
// replays identically on every run. The returned Clock is safe for
// concurrent use; concurrent readers draw distinct, monotone readings.
func StepClock(start time.Time, step time.Duration) Clock {
	var n atomic.Int64
	return func() time.Time {
		return start.Add(time.Duration(n.Add(1)-1) * step)
	}
}
