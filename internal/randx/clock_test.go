package randx

import (
	"sync"
	"testing"
	"time"
)

func TestFixedClock(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	c := FixedClock(t0)
	if !c().Equal(t0) || !c().Equal(t0) {
		t.Fatal("FixedClock drifted")
	}
	if d := c.Since(t0.Add(-time.Minute)); d != time.Minute {
		t.Fatalf("Since = %v, want 1m", d)
	}
}

func TestStepClock(t *testing.T) {
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	c := StepClock(t0, time.Second)
	for i := 0; i < 3; i++ {
		if got, want := c(), t0.Add(time.Duration(i)*time.Second); !got.Equal(want) {
			t.Fatalf("reading %d = %v, want %v", i, got, want)
		}
	}
}

// TestStepClockConcurrent checks that concurrent readers draw distinct,
// gap-free readings: virtual time must not repeat or skip under race.
func TestStepClockConcurrent(t *testing.T) {
	t0 := time.Unix(0, 0)
	c := StepClock(t0, time.Nanosecond)
	const n = 64
	var wg sync.WaitGroup
	seen := make([]time.Time, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			seen[i] = c()
		}(i)
	}
	wg.Wait()
	uniq := make(map[int64]bool, n)
	for _, ts := range seen {
		ns := ts.UnixNano()
		if ns < 0 || ns >= n {
			t.Fatalf("reading %v outside the first %d steps", ts, n)
		}
		uniq[ns] = true
	}
	if len(uniq) != n {
		t.Fatalf("%d distinct readings from %d concurrent calls", len(uniq), n)
	}
}

func TestSystemClockIsWallClock(t *testing.T) {
	before := time.Now()
	got := SystemClock()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("SystemClock reading %v outside [%v, %v]", got, before, after)
	}
}
