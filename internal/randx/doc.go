// Package randx provides the deterministic random-number machinery used
// across the repository: a seedable source plus samplers for the
// distribution families needed by the Pearson system (normal, gamma,
// beta, beta-prime, inverse-gamma, Student-t) and by the performance
// simulator (lognormal, mixtures, categorical choice).
//
// All randomness in this project flows through *randx.RNG so that every
// experiment is reproducible bit-for-bit from its seed; parallel
// workers derive independent child streams with Split/SplitN before
// dispatch rather than sharing one source.
//
// The package also owns the repository's clock (SystemClock and the
// test clocks in clock.go): the nondeterminism analyzer forbids direct
// time.Now/Since/Until elsewhere in internal packages, so wall-clock
// reads are as auditable as random draws.
package randx
