package randx

import (
	"fmt"
	"math"
)

// Component is one mode of a mixture distribution. The component's base
// shape is lognormal (location Mu, shape Sigma in log space) shifted by
// Shift; an optional Pareto-style tail can be attached to model
// scheduler-interference stragglers.
type Component struct {
	Weight float64 // mixture weight, need not be normalized
	Mu     float64 // log-space location
	Sigma  float64 // log-space shape (>= 0)
	Shift  float64 // additive shift of the whole component

	// TailProb is the probability that a draw from this component is
	// replaced by a heavy-tail excursion multiplying the value by
	// (1 + Pareto(TailAlpha)). Zero disables the tail.
	TailProb  float64
	TailAlpha float64 // Pareto shape; larger is lighter. Must be > 0 when TailProb > 0.
	TailScale float64 // relative magnitude of tail excursions
}

// Mixture is a weighted mixture of Components. It is the ground-truth
// run-time distribution family used by the performance simulator: the mix
// of shifted lognormals covers narrow unimodal, wide skewed, bimodal, and
// long-tailed shapes — the taxonomy observed in the paper's Figure 3.
type Mixture struct {
	Components []Component
	weights    []float64 // cached for Categorical
}

// NewMixture validates and returns a mixture. At least one component with
// positive weight is required.
func NewMixture(components []Component) (*Mixture, error) {
	if len(components) == 0 {
		return nil, fmt.Errorf("randx: mixture needs at least one component")
	}
	var total float64
	weights := make([]float64, len(components))
	for i, c := range components {
		if c.Weight < 0 || math.IsNaN(c.Weight) {
			return nil, fmt.Errorf("randx: component %d has invalid weight %v", i, c.Weight)
		}
		if c.Sigma < 0 {
			return nil, fmt.Errorf("randx: component %d has negative sigma %v", i, c.Sigma)
		}
		if c.TailProb < 0 || c.TailProb > 1 {
			return nil, fmt.Errorf("randx: component %d has invalid tail probability %v", i, c.TailProb)
		}
		if c.TailProb > 0 && c.TailAlpha <= 0 {
			return nil, fmt.Errorf("randx: component %d has tail without positive alpha", i)
		}
		weights[i] = c.Weight
		total += c.Weight
	}
	if total <= 0 {
		return nil, fmt.Errorf("randx: mixture weights sum to zero")
	}
	return &Mixture{Components: components, weights: weights}, nil
}

// Sample draws one value from the mixture.
func (m *Mixture) Sample(r *RNG) float64 {
	idx := r.Categorical(m.weights)
	c := m.Components[idx]
	v := c.Shift + math.Exp(r.Normal(c.Mu, c.Sigma))
	if c.TailProb > 0 && r.Float64() < c.TailProb {
		// Pareto excursion: scale by 1 + TailScale*(U^{-1/alpha} - 1).
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		//lint:allow floatcheck NewMixture rejects components with TailProb > 0 and TailAlpha <= 0
		v *= 1 + c.TailScale*(math.Pow(u, -1/c.TailAlpha)-1)
	}
	return v
}

// SampleN draws n values from the mixture.
func (m *Mixture) SampleN(r *RNG, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = m.Sample(r)
	}
	return out
}

// Mean returns the analytic mean of the mixture, ignoring tail excursions
// (whose contribution is small by construction and accounted for in tests
// only empirically).
func (m *Mixture) Mean() float64 {
	var total, acc float64
	for _, c := range m.Components {
		total += c.Weight
		acc += c.Weight * (c.Shift + math.Exp(c.Mu+c.Sigma*c.Sigma/2))
	}
	//lint:allow floatcheck NewMixture rejects weight sets that sum to zero, so total > 0
	return acc / total
}

// NumModes returns the number of mixture components — an upper bound on
// (and for well-separated components, equal to) the mode count.
func (m *Mixture) NumModes() int { return len(m.Components) }
