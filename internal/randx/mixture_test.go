package randx

import (
	"math"
	"testing"
)

func TestNewMixtureValidation(t *testing.T) {
	cases := []struct {
		name string
		cs   []Component
	}{
		{"empty", nil},
		{"negative weight", []Component{{Weight: -1, Mu: 0, Sigma: 1}}},
		{"zero total", []Component{{Weight: 0}}},
		{"negative sigma", []Component{{Weight: 1, Sigma: -0.1}}},
		{"bad tail prob", []Component{{Weight: 1, TailProb: 1.5}}},
		{"tail without alpha", []Component{{Weight: 1, TailProb: 0.1}}},
	}
	for _, c := range cases {
		if _, err := NewMixture(c.cs); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestMixtureSingleComponentMean(t *testing.T) {
	m, err := NewMixture([]Component{{Weight: 1, Mu: 0, Sigma: 0.25, Shift: 10}})
	if err != nil {
		t.Fatal(err)
	}
	r := New(20)
	xs := m.SampleN(r, 100000)
	mean, _ := moments(xs)
	want := m.Mean()
	if math.Abs(mean-want) > 0.02 {
		t.Errorf("sample mean = %v, analytic mean = %v", mean, want)
	}
	wantAnalytic := 10 + math.Exp(0.25*0.25/2)
	if math.Abs(want-wantAnalytic) > 1e-12 {
		t.Errorf("analytic mean = %v, want %v", want, wantAnalytic)
	}
}

func TestMixtureBimodalSeparation(t *testing.T) {
	// Two well-separated modes: ~60% around 11, ~40% around 15.
	m, err := NewMixture([]Component{
		{Weight: 0.6, Mu: 0, Sigma: 0.05, Shift: 10},
		{Weight: 0.4, Mu: math.Log(5), Sigma: 0.02, Shift: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	r := New(21)
	xs := m.SampleN(r, 50000)
	var lo, hi int
	for _, x := range xs {
		if x < 13 {
			lo++
		} else {
			hi++
		}
	}
	fracLo := float64(lo) / float64(len(xs))
	if math.Abs(fracLo-0.6) > 0.01 {
		t.Errorf("low-mode fraction = %v, want ~0.6", fracLo)
	}
	if m.NumModes() != 2 {
		t.Errorf("NumModes = %d, want 2", m.NumModes())
	}
}

func TestMixtureTailProducesStragglers(t *testing.T) {
	base := Component{Weight: 1, Mu: 0, Sigma: 0.01, Shift: 0}
	tailed := base
	tailed.TailProb = 0.05
	tailed.TailAlpha = 2
	tailed.TailScale = 1

	mBase, _ := NewMixture([]Component{base})
	mTail, _ := NewMixture([]Component{tailed})
	r1, r2 := New(22), New(22)
	n := 50000
	maxBase, maxTail := 0.0, 0.0
	countHigh := 0
	for i := 0; i < n; i++ {
		b := mBase.Sample(r1)
		tv := mTail.Sample(r2)
		if b > maxBase {
			maxBase = b
		}
		if tv > maxTail {
			maxTail = tv
		}
		if tv > 1.5 {
			countHigh++
		}
	}
	if maxTail <= maxBase*1.2 {
		t.Errorf("tail did not produce stragglers: maxBase=%v maxTail=%v", maxBase, maxTail)
	}
	frac := float64(countHigh) / float64(n)
	if frac < 0.005 || frac > 0.06 {
		t.Errorf("straggler fraction = %v, want within (0.005, 0.06)", frac)
	}
}

func TestMixtureSampleDeterministic(t *testing.T) {
	m, _ := NewMixture([]Component{
		{Weight: 1, Mu: 0, Sigma: 0.3},
		{Weight: 2, Mu: 1, Sigma: 0.1, TailProb: 0.1, TailAlpha: 3, TailScale: 0.5},
	})
	a := m.SampleN(New(33), 100)
	b := m.SampleN(New(33), 100)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("mixture sampling is not deterministic for a fixed seed")
		}
	}
}

func TestMixtureMeanMultiComponent(t *testing.T) {
	m, _ := NewMixture([]Component{
		{Weight: 1, Mu: 0, Sigma: 0, Shift: 1},  // constant 2
		{Weight: 3, Mu: 0, Sigma: 0, Shift: 10}, // constant 11
	})
	want := (1*2.0 + 3*11.0) / 4
	if got := m.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", got, want)
	}
}
