package randx

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random number generator. It wraps a PCG source
// and layers the distribution samplers this project needs on top of it.
//
// RNG is not safe for concurrent use; use Split to derive independent
// streams for parallel workers.
type RNG struct {
	src *rand.Rand
	// seeds retained so Split can derive child streams deterministically.
	seed1, seed2 uint64
	children     uint64
}

// New returns an RNG seeded with the pair (seed, seed^0x9E3779B97F4A7C15).
func New(seed uint64) *RNG {
	return NewPair(seed, seed^0x9E3779B97F4A7C15)
}

// NewPair returns an RNG seeded from two 64-bit values.
func NewPair(s1, s2 uint64) *RNG {
	return &RNG{src: rand.New(rand.NewPCG(s1, s2)), seed1: s1, seed2: s2}
}

// Split derives a new, statistically independent RNG from this one.
// Successive calls yield distinct streams; the derivation depends only on
// the parent's seeds and the number of prior Split calls, not on how much
// randomness the parent has consumed, so parallel decomposition does not
// perturb sequential results.
func (r *RNG) Split() *RNG {
	r.children++
	mix := func(z uint64) uint64 {
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	return NewPair(mix(r.seed1+r.children*0x9E3779B97F4A7C15), mix(r.seed2-r.children*0xC2B2AE3D27D4EB4F))
}

// SplitN derives n independent child RNGs, equivalent to calling Split
// n times. It is the pre-dispatch idiom for parallel work: splitting
// every per-item stream up front (in item order) makes a parallel
// computation bit-identical to its sequential counterpart regardless of
// worker count or completion order.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Uniform returns a uniform value in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*r.src.Float64() }

// IntN returns a uniform integer in [0, n).
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Normal returns a normal variate with the given mean and standard
// deviation. sigma must be non-negative.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic(fmt.Sprintf("randx: Normal sigma must be >= 0, got %v", sigma))
	}
	return mean + sigma*r.src.NormFloat64()
}

// StdNormal returns a standard normal variate.
func (r *RNG) StdNormal() float64 { return r.src.NormFloat64() }

// Exponential returns an exponential variate with the given rate λ > 0
// (mean 1/λ).
func (r *RNG) Exponential(rate float64) float64 {
	if rate <= 0 {
		panic(fmt.Sprintf("randx: Exponential rate must be > 0, got %v", rate))
	}
	return r.src.ExpFloat64() / rate
}

// Gamma returns a gamma variate with shape alpha > 0 and scale theta > 0
// (mean alpha*theta), using the Marsaglia–Tsang squeeze method, with the
// standard alpha < 1 boost.
func (r *RNG) Gamma(alpha, theta float64) float64 {
	if alpha <= 0 || theta <= 0 {
		panic(fmt.Sprintf("randx: Gamma requires alpha, theta > 0, got alpha=%v theta=%v", alpha, theta))
	}
	if alpha < 1 {
		// Boost: X ~ Gamma(alpha+1) * U^{1/alpha}.
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(alpha+1, theta) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.src.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.src.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v * theta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v * theta
		}
	}
}

// Beta returns a beta variate with shape parameters a, b > 0 on (0, 1),
// via the ratio of gammas.
func (r *RNG) Beta(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		panic(fmt.Sprintf("randx: Beta requires a, b > 0, got a=%v b=%v", a, b))
	}
	x := r.Gamma(a, 1)
	y := r.Gamma(b, 1)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// BetaPrime returns a beta-prime (Pearson type VI) variate with shape
// parameters a, b > 0: X/(1-X) for X ~ Beta(a, b). Its mean is a/(b-1)
// for b > 1.
func (r *RNG) BetaPrime(a, b float64) float64 {
	x := r.Beta(a, b)
	// Guard against x == 1 (probability zero but floats happen).
	if x >= 1 {
		x = math.Nextafter(1, 0)
	}
	return x / (1 - x)
}

// InvGamma returns an inverse-gamma (Pearson type V) variate with shape
// alpha > 0 and scale beta > 0: 1/G for G ~ Gamma(alpha, 1/beta).
func (r *RNG) InvGamma(alpha, beta float64) float64 {
	if alpha <= 0 || beta <= 0 {
		panic(fmt.Sprintf("randx: InvGamma requires alpha, beta > 0, got alpha=%v beta=%v", alpha, beta))
	}
	g := r.Gamma(alpha, 1/beta)
	for g == 0 {
		g = r.Gamma(alpha, 1/beta)
	}
	return 1 / g
}

// StudentT returns a Student-t variate with nu > 0 degrees of freedom,
// via Z / sqrt(ChiSq(nu)/nu).
func (r *RNG) StudentT(nu float64) float64 {
	if nu <= 0 {
		panic(fmt.Sprintf("randx: StudentT requires nu > 0, got %v", nu))
	}
	z := r.src.NormFloat64()
	chi2 := r.Gamma(nu/2, 2)
	for chi2 == 0 {
		chi2 = r.Gamma(nu/2, 2)
	}
	return z / math.Sqrt(chi2/nu)
}

// Lognormal returns exp(Normal(mu, sigma)).
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Categorical draws an index in [0, len(weights)) with probability
// proportional to weights[i]. Weights must be non-negative with a
// positive sum.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic(fmt.Sprintf("randx: Categorical weight %d is invalid: %v", i, w))
		}
		total += w
	}
	if total <= 0 {
		panic("randx: Categorical weights sum to zero")
	}
	u := r.src.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if u < cum {
			return i
		}
	}
	return len(weights) - 1 // rounding fell off the end
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using the provided swap
// function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// SampleWithReplacement returns k indices drawn uniformly with
// replacement from [0, n).
func (r *RNG) SampleWithReplacement(n, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = r.src.IntN(n)
	}
	return out
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0, n). It panics if k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic(fmt.Sprintf("randx: cannot sample %d of %d without replacement", k, n))
	}
	perm := r.src.Perm(n)
	return perm[:k]
}
