package randx

import (
	"math"
	"testing"
)

// moments computes the sample mean and variance for test assertions.
func moments(xs []float64) (mean, variance float64) {
	n := float64(len(xs))
	for _, x := range xs {
		mean += x
	}
	mean /= n
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= n - 1
	return mean, variance
}

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(43)
	same := true
	a2 := New(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	if c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() && c1.Float64() == c2.Float64() {
		t.Error("sibling splits look identical")
	}
	// Split is insensitive to parent consumption.
	p1 := New(7)
	_ = p1.Float64()
	_ = p1.Float64()
	d1 := p1.Split()
	p2 := New(7)
	e1 := p2.Split()
	for i := 0; i < 20; i++ {
		if d1.Float64() != e1.Float64() {
			t.Fatal("Split depends on parent consumption")
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(2)
	n := 200000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Normal(3, 2)
	}
	mean, variance := moments(xs)
	if math.Abs(mean-3) > 0.03 {
		t.Errorf("normal mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.1 {
		t.Errorf("normal variance = %v, want ~4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(3)
	n := 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Exponential(2)
		if v < 0 {
			t.Fatal("exponential variate negative")
		}
		sum += v
	}
	if mean := sum / float64(n); math.Abs(mean-0.5) > 0.01 {
		t.Errorf("exponential(rate=2) mean = %v, want ~0.5", mean)
	}
}

func TestGammaMoments(t *testing.T) {
	cases := []struct{ alpha, theta float64 }{
		{0.3, 1}, {0.9, 2}, {1, 1}, {2.5, 0.5}, {9, 3}, {50, 0.1},
	}
	r := New(4)
	n := 150000
	for _, c := range cases {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Gamma(c.alpha, c.theta)
			if xs[i] < 0 {
				t.Fatalf("gamma(%v,%v) variate negative", c.alpha, c.theta)
			}
		}
		mean, variance := moments(xs)
		wantMean := c.alpha * c.theta
		wantVar := c.alpha * c.theta * c.theta
		if math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("gamma(%v,%v) mean = %v, want ~%v", c.alpha, c.theta, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.1*wantVar+0.02 {
			t.Errorf("gamma(%v,%v) variance = %v, want ~%v", c.alpha, c.theta, variance, wantVar)
		}
	}
}

func TestBetaMoments(t *testing.T) {
	cases := []struct{ a, b float64 }{{2, 5}, {0.5, 0.5}, {5, 1}, {3, 3}}
	r := New(5)
	n := 150000
	for _, c := range cases {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Beta(c.a, c.b)
			if xs[i] < 0 || xs[i] > 1 {
				t.Fatalf("beta(%v,%v) variate %v outside [0,1]", c.a, c.b, xs[i])
			}
		}
		mean, variance := moments(xs)
		wantMean := c.a / (c.a + c.b)
		s := c.a + c.b
		wantVar := c.a * c.b / (s * s * (s + 1))
		if math.Abs(mean-wantMean) > 0.01 {
			t.Errorf("beta(%v,%v) mean = %v, want ~%v", c.a, c.b, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.05*wantVar+0.002 {
			t.Errorf("beta(%v,%v) variance = %v, want ~%v", c.a, c.b, variance, wantVar)
		}
	}
}

func TestBetaPrimeMean(t *testing.T) {
	r := New(6)
	n := 200000
	a, b := 3.0, 5.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.BetaPrime(a, b)
		if v < 0 {
			t.Fatal("beta-prime variate negative")
		}
		sum += v
	}
	want := a / (b - 1)
	if mean := sum / float64(n); math.Abs(mean-want) > 0.02 {
		t.Errorf("beta-prime(%v,%v) mean = %v, want ~%v", a, b, mean, want)
	}
}

func TestInvGammaMean(t *testing.T) {
	r := New(7)
	n := 200000
	alpha, beta := 4.0, 6.0
	var sum float64
	for i := 0; i < n; i++ {
		v := r.InvGamma(alpha, beta)
		if v <= 0 {
			t.Fatal("inverse-gamma variate non-positive")
		}
		sum += v
	}
	want := beta / (alpha - 1)
	if mean := sum / float64(n); math.Abs(mean-want) > 0.03 {
		t.Errorf("invgamma(%v,%v) mean = %v, want ~%v", alpha, beta, mean, want)
	}
}

func TestStudentTMoments(t *testing.T) {
	r := New(8)
	n := 300000
	nu := 8.0
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.StudentT(nu)
	}
	mean, variance := moments(xs)
	if math.Abs(mean) > 0.02 {
		t.Errorf("t(%v) mean = %v, want ~0", nu, mean)
	}
	want := nu / (nu - 2)
	if math.Abs(variance-want) > 0.1 {
		t.Errorf("t(%v) variance = %v, want ~%v", nu, variance, want)
	}
}

func TestLognormalMedian(t *testing.T) {
	r := New(9)
	n := 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Lognormal(1, 0.5)
	}
	// Median of lognormal is exp(mu); check via counting.
	med := math.Exp(1)
	below := 0
	for _, x := range xs {
		if x < med {
			below++
		}
	}
	frac := float64(below) / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("fraction below exp(mu) = %v, want ~0.5", frac)
	}
}

func TestCategoricalFrequencies(t *testing.T) {
	r := New(10)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	n := 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("category %d frequency = %v, want ~%v", i, got, want)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	r := New(11)
	for _, w := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Categorical(%v) did not panic", w)
				}
			}()
			r.Categorical(w)
		}()
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := New(12)
	for trial := 0; trial < 50; trial++ {
		idx := r.SampleWithoutReplacement(20, 10)
		seen := make(map[int]bool)
		for _, i := range idx {
			if i < 0 || i >= 20 {
				t.Fatalf("index %d out of range", i)
			}
			if seen[i] {
				t.Fatal("duplicate index in without-replacement sample")
			}
			seen[i] = true
		}
	}
}

func TestSampleWithReplacementRange(t *testing.T) {
	r := New(13)
	idx := r.SampleWithReplacement(5, 1000)
	if len(idx) != 1000 {
		t.Fatalf("length = %d", len(idx))
	}
	for _, i := range idx {
		if i < 0 || i >= 5 {
			t.Fatalf("index %d out of range", i)
		}
	}
}

func TestSamplerPanicsOnInvalidParams(t *testing.T) {
	r := New(14)
	cases := []func(){
		func() { r.Normal(0, -1) },
		func() { r.Exponential(0) },
		func() { r.Gamma(0, 1) },
		func() { r.Gamma(1, -2) },
		func() { r.Beta(-1, 1) },
		func() { r.InvGamma(1, 0) },
		func() { r.StudentT(0) },
		func() { r.SampleWithoutReplacement(3, 4) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestSplitNMatchesSuccessiveSplits pins the pre-dispatch idiom: SplitN
// must yield exactly the streams that n successive Split calls would,
// so parallel decompositions stay bit-identical to sequential ones.
func TestSplitNMatchesSuccessiveSplits(t *testing.T) {
	a := New(42)
	b := New(42)
	split := make([]*RNG, 4)
	for i := range split {
		split[i] = a.Split()
	}
	splitN := b.SplitN(4)
	for i := range split {
		for j := 0; j < 32; j++ {
			x, y := split[i].Float64(), splitN[i].Float64()
			if x != y {
				t.Fatalf("stream %d draw %d: Split %v != SplitN %v", i, j, x, y)
			}
		}
	}
	// Further splits of the parents stay aligned too.
	if a.Split().Float64() != b.Split().Float64() {
		t.Fatal("parents diverged after SplitN")
	}
}
