// Package report regenerates every results figure of the paper
// (Figures 1 and 3–9) from a measurement database, and renders each as
// terminal graphics plus machine-readable rows.
//
// One driver function corresponds to one paper figure: the measured
// distribution gallery (Figures 1 and 3), the representation and model
// violins for both use cases (Figures 4, 6, 7), the per-benchmark
// overlays (Figures 5 and 9), and the cross-system direction comparison
// (Figure 8). Extension drivers cover experiments the paper motivates
// but does not run: alternative divergences, the Quantile
// representation, a linear baseline, and ablations over k, distance
// metric, profile moments, and bin count.
//
// Each driver prints the paper's headline numbers next to the measured
// ones so divergences are explicit; EXPERIMENTS.md records a full run.
// It is the module behind cmd/experiments and the benchmark harness.
package report
