package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/randx"
	"repro/internal/stats"
	"repro/internal/viz"
)

// This file implements the extension experiments beyond the paper's
// figures — the "future work" directions its conclusion sketches plus
// the methodological checks DESIGN.md calls out:
//
//	ext1: model comparison including a Ridge linear baseline;
//	ext2: representation comparison including the Quantile extension;
//	ext3: does the "PearsonRnd + kNN wins" conclusion survive scoring
//	      with divergences other than KS?
//	ext4: cost comparison against the adaptive stopping rule the paper
//	      cites (how many runs does *measuring* a trustworthy
//	      distribution take, versus the fixed 10-run prediction budget);
//	ext5: which profile metrics drive the prediction (random-forest
//	      gain importance);
//	ext6: how much injected measurement dirt (corrupt counters,
//	      truncated/drifted schemas, dropped runs) the quarantine +
//	      repair pipeline absorbs before LOGO-CV accuracy degrades.

// Ext1ModelBaselines extends Figure 4's model comparison with the Ridge
// linear baseline (PearsonRnd representation, use case 1).
func Ext1ModelBaselines(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	rows := [][]string{{"model", "meanKS", "medianKS"}}
	means := map[string]float64{}
	for _, model := range core.ModelsExtended() {
		scores, err := core.EvaluateUC1(intel, core.UC1Config{
			Rep: distrep.PearsonRnd, Model: model, NumSamples: o.Samples,
			Seed: o.Seed, Models: o.modelOptions(),
		})
		if err != nil {
			return nil, err
		}
		ks := core.KSValues(scores)
		text.WriteString(viz.ViolinRow(model.String(), ks, 0, 1, 40) + "\n")
		v := stats.Summarize(ks)
		means[model.String()] = v.Mean
		rows = append(rows, []string{model.String(), fmt.Sprintf("%.3f", v.Mean), fmt.Sprintf("%.3f", v.Median)})
	}
	return &Result{
		ID:    "ext1",
		Title: "Extension 1: UC1 model comparison with a Ridge linear baseline",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "Ridge minus kNN mean KS (positive: nonlinearity matters)",
				Paper: 0, Measured: means["Ridge"] - means["kNN"]},
		},
	}, nil
}

// Ext2QuantileRepresentation extends the representation comparison with
// the Quantile representation (kNN model, use case 1).
func Ext2QuantileRepresentation(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	rows := [][]string{{"representation", "meanKS", "medianKS"}}
	means := map[string]float64{}
	for _, rep := range distrep.KindsExtended() {
		scores, err := core.EvaluateUC1(intel, core.UC1Config{
			Rep: rep, Model: core.KNN, NumSamples: o.Samples,
			Bins: o.Bins, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ks := core.KSValues(scores)
		text.WriteString(viz.ViolinRow(rep.String(), ks, 0, 1, 40) + "\n")
		v := stats.Summarize(ks)
		means[rep.String()] = v.Mean
		rows = append(rows, []string{rep.String(), fmt.Sprintf("%.3f", v.Mean), fmt.Sprintf("%.3f", v.Median)})
	}
	return &Result{
		ID:    "ext2",
		Title: "Extension 2: UC1 representation comparison with a Quantile representation",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "Quantile minus PearsonRnd mean KS (negative: quantiles win)",
				Paper: 0, Measured: means["Quantile"] - means["PearsonRnd"]},
		},
	}, nil
}

// Ext3DivergenceRobustness rescores the paper's headline comparison
// (PearsonRnd vs Histogram vs PyMaxEnt under kNN) with four additional
// divergences: does the winner depend on the KS choice?
func Ext3DivergenceRobustness(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	type agg struct{ ks, w1, ad, cvm, energy float64 }
	rows := [][]string{{"representation", "KS", "W1", "AD", "CvM", "Energy"}}
	var text strings.Builder
	best := map[string]string{}
	bestVal := map[string]float64{}
	for _, rep := range distrep.Kinds() {
		scores, err := core.EvaluateUC1(intel, core.UC1Config{
			Rep: rep, Model: core.KNN, NumSamples: o.Samples,
			Bins: o.Bins, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		var a agg
		for _, s := range scores {
			a.ks += s.KS
			a.w1 += s.W1
			a.ad += s.AD
			a.cvm += s.CvM
			a.energy += s.Energy
		}
		n := float64(len(scores))
		a.ks /= n
		a.w1 /= n
		a.ad /= n
		a.cvm /= n
		a.energy /= n
		rows = append(rows, []string{
			rep.String(),
			fmt.Sprintf("%.3f", a.ks), fmt.Sprintf("%.4f", a.w1),
			fmt.Sprintf("%.2f", a.ad), fmt.Sprintf("%.2f", a.cvm),
			fmt.Sprintf("%.4f", a.energy),
		})
		for name, v := range map[string]float64{"KS": a.ks, "W1": a.w1, "AD": a.ad, "CvM": a.cvm, "Energy": a.energy} {
			if cur, ok := bestVal[name]; !ok || v < cur {
				bestVal[name] = v
				best[name] = rep.String()
			}
		}
	}
	agreeing := 0
	for _, name := range []string{"KS", "W1", "AD", "CvM", "Energy"} {
		fmt.Fprintf(&text, "best representation under %-6s: %s\n", name, best[name])
		if best[name] == best["KS"] {
			agreeing++
		}
	}
	return &Result{
		ID:    "ext3",
		Title: "Extension 3: is the representation ranking divergence-specific?",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "divergences agreeing with KS's winner (of 5)", Paper: 0, Measured: float64(agreeing)},
		},
	}, nil
}

// Ext4AdaptiveCost compares the paper's fixed 10-run prediction budget
// against the adaptive stopping rule it cites: how many measured runs
// does each benchmark need before its empirical distribution is
// trustworthy, and how does the distribution measured at that stopping
// point compare to the 10-run prediction?
func Ext4AdaptiveCost(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	machine := perfsim.NewMachine(perfsim.NewIntelSystem())
	rows := [][]string{{"benchmark", "adaptiveRuns", "KS(adaptive)", "KS(predicted,10 runs)"}}
	var runCounts, ksAdaptive, ksPredicted []float64
	rng := randx.New(o.Seed ^ 0x5A5A5A5A)
	// A representative subset spanning narrow to wide keeps this
	// experiment affordable; the distribution of stopping costs over all
	// benchmarks is reported in aggregate.
	selection := []string{
		"specaccel/359", "rodinia/heartwall", "npb/is", "npb/bt",
		"rodinia/ludomp", "mllib/dtclassifier", "specomp/376",
		"specaccel/303", "parboil/mrigridding", "parsec/canneal",
	}
	for _, id := range selection {
		b, ok := intel.Find(id)
		if !ok {
			return nil, fmt.Errorf("report: %s missing from campaign", id)
		}
		w, _ := perfsim.FindWorkload(id)
		bench := machine.Bench(w)
		src := rng.Split()
		res, err := adaptive.Run(func() float64 {
			s, _ := bench.Dist.Sample(src)
			return s
		}, adaptive.Config{MaxRuns: 1000}, rng.Split())
		if err != nil {
			return nil, err
		}
		actual := b.RelTimes()
		adaptiveRel := stats.Normalize(res.Sample)
		ksA := stats.KSStatistic(adaptiveRel, actual)

		pred, actual2, err := core.PredictUC1(intel, id, core.UC1Config{
			Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: o.Samples, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ksP := stats.KSStatistic(pred, actual2)
		runCounts = append(runCounts, float64(res.Runs))
		ksAdaptive = append(ksAdaptive, ksA)
		ksPredicted = append(ksPredicted, ksP)
		rows = append(rows, []string{
			id, fmt.Sprint(res.Runs),
			fmt.Sprintf("%.3f", ksA), fmt.Sprintf("%.3f", ksP),
		})
	}
	var text strings.Builder
	fmt.Fprintf(&text, "adaptive stopping cost: %s\n", stats.Summarize(runCounts))
	fmt.Fprintf(&text, "KS at stopping point  : %s\n", stats.Summarize(ksAdaptive))
	fmt.Fprintf(&text, "KS of 10-run predictor: %s\n", stats.Summarize(ksPredicted))
	return &Result{
		ID:    "ext4",
		Title: "Extension 4: prediction budget vs the adaptive stopping rule",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "mean adaptive run cost (prediction uses 10)", Paper: 0, Measured: stats.Mean(runCounts)},
			{Name: "mean KS: measured-at-stop", Paper: 0, Measured: stats.Mean(ksAdaptive)},
			{Name: "mean KS: predicted-from-10", Paper: 0, Measured: stats.Mean(ksPredicted)},
		},
	}, nil
}

// Ext5FeatureImportance reports which profile metrics a random forest
// relies on when predicting distribution moments (use case 1), with the
// four moment features of each metric aggregated.
func Ext5FeatureImportance(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	names, imp, err := core.FeatureImportanceUC1(intel, core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.RandomForest, NumSamples: o.Samples,
		Seed: o.Seed, Models: o.modelOptions(),
	})
	if err != nil {
		return nil, err
	}
	// Aggregate the 4 moment columns of each metric.
	byMetric := map[string]float64{}
	for i, name := range names {
		metric := name
		if cut := strings.LastIndex(name, ":"); cut >= 0 {
			metric = name[:cut]
		}
		byMetric[metric] += imp[i]
	}
	type kv struct {
		name string
		v    float64
	}
	var ranked []kv
	for k, v := range byMetric {
		ranked = append(ranked, kv{k, v})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].v != ranked[b].v {
			return ranked[a].v > ranked[b].v
		}
		return ranked[a].name < ranked[b].name
	})
	rows := [][]string{{"rank", "metric", "importance"}}
	var text strings.Builder
	top := 15
	if top > len(ranked) {
		top = len(ranked)
	}
	var topShare float64
	for i := 0; i < top; i++ {
		rows = append(rows, []string{
			fmt.Sprint(i + 1), ranked[i].name, fmt.Sprintf("%.4f", ranked[i].v),
		})
		fmt.Fprintf(&text, "%2d. %-40s %.4f\n", i+1, ranked[i].name, ranked[i].v)
		topShare += ranked[i].v
	}
	return &Result{
		ID:    "ext5",
		Title: "Extension 5: profile metrics driving the distribution prediction (RF gain importance)",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "importance share of the top 15 metrics", Paper: 0, Measured: topShare},
		},
	}, nil
}

// Ext6FaultTolerance sweeps injected fault rates over the measurement
// campaign and reports how LOGO-CV accuracy (mean KS, kNN + PearsonRnd,
// use case 1) responds under the ingest-validation pipeline, with and
// without counter repair. The composite fault mix at rate r corrupts a
// counter in r of the runs and truncates, schema-drifts, and drops r/5
// each; folds whose fit still fails are tolerated and counted rather
// than aborting the sweep.
func Ext6FaultTolerance(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	if _, _, err := intelAMD(db); err != nil {
		return nil, err
	}
	rates := []float64{0, 0.01, 0.05, 0.10}
	rows := [][]string{{"faultRate", "injected", "quarantined", "meanKS", "meanKS(repair)", "usable", "foldFail"}}
	var text strings.Builder
	ksAt := map[float64]float64{}
	ksRepairAt := map[float64]float64{}
	for _, rate := range rates {
		faulted := db
		injected := 0
		if rate > 0 {
			fdb, frep, err := faults.Inject(db, faults.Config{
				Seed:         o.Seed + 97,
				CorruptRate:  rate,
				TruncateRate: rate / 5,
				DriftRate:    rate / 5,
				DropRate:     rate / 5,
				Systems:      []string{"intel"},
			})
			if err != nil {
				return nil, err
			}
			faulted = fdb
			injected = frep.Total()
		}
		sys, ok := faulted.System("intel")
		if !ok {
			return nil, fmt.Errorf("report: faulted database lacks the intel system")
		}
		_, reports := sys.Validate(0, 0, measure.ValidationPolicy{})
		quarantined := 0
		for i := range reports {
			quarantined += reports[i].Runs.Quarantined + reports[i].Probes.Quarantined
		}
		cfg := core.UC1Config{
			Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: o.Samples,
			Seed: o.Seed, Models: o.modelOptions(),
		}
		scores, folds, err := core.EvaluateUC1Tolerant(sys, cfg)
		if err != nil {
			return nil, err
		}
		cfgRepair := cfg
		cfgRepair.Repair = true
		scoresRepair, _, err := core.EvaluateUC1Tolerant(sys, cfgRepair)
		if err != nil {
			return nil, err
		}
		meanKS := stats.Summarize(core.KSValues(scores)).Mean
		meanKSRepair := stats.Summarize(core.KSValues(scoresRepair)).Mean
		ksAt[rate] = meanKS
		ksRepairAt[rate] = meanKSRepair
		usable := len(scores) + len(folds)
		rows = append(rows, []string{
			fmt.Sprintf("%.0f%%", rate*100), fmt.Sprint(injected), fmt.Sprint(quarantined),
			fmt.Sprintf("%.3f", meanKS), fmt.Sprintf("%.3f", meanKSRepair),
			fmt.Sprint(usable), fmt.Sprint(len(folds)),
		})
		fmt.Fprintf(&text, "rate %4.0f%%: %4d injected, %4d quarantined -> meanKS %.3f (repair %.3f), %d usable benchmarks, %d failed folds\n",
			rate*100, injected, quarantined, meanKS, meanKSRepair, usable, len(folds))
	}
	worst := rates[len(rates)-1]
	return &Result{
		ID:    "ext6",
		Title: "Extension 6: UC1 accuracy vs injected fault rate under ingest quarantine",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: fmt.Sprintf("mean KS inflation at %.0f%% composite faults (quarantine only)", worst*100),
				Paper: 0, Measured: ksAt[worst] - ksAt[0]},
			{Name: fmt.Sprintf("repair benefit at %.0f%% (quarantine-only minus repair mean KS)", worst*100),
				Paper: 0, Measured: ksAt[worst] - ksRepairAt[worst]},
		},
	}, nil
}

// Extensions maps extension IDs to drivers.
func Extensions() map[string]func(*measure.Database, Options) (*Result, error) {
	return map[string]func(*measure.Database, Options) (*Result, error){
		"ext1": Ext1ModelBaselines,
		"ext2": Ext2QuantileRepresentation,
		"ext3": Ext3DivergenceRobustness,
		"ext4": Ext4AdaptiveCost,
		"ext5": Ext5FeatureImportance,
		"ext6": Ext6FaultTolerance,
	}
}

// ExtensionIDs lists the extension experiments in order.
func ExtensionIDs() []string {
	return []string{"ext1", "ext2", "ext3", "ext4", "ext5", "ext6"}
}
