//go:build faults

package report

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/measure"
	"repro/internal/perfsim"
)

// TestExt6FaultToleranceEndToEnd is the fault-injection CI shard
// (go test -tags=faults): it drives the full inject -> validate ->
// quarantine -> LOGO-evaluate pipeline across the fault-rate sweep on a
// reduced campaign and checks the structural invariants of the result.
func TestExt6FaultToleranceEndToEnd(t *testing.T) {
	db, err := measure.Collect(
		[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
		perfsim.TableI()[:16],
		measure.Config{Runs: 80, ProbeRuns: 12, Seed: 20250806},
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Ext6FaultTolerance(db, Options{Seed: 3, Samples: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ext6" {
		t.Errorf("ID = %q", res.ID)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d, want header + 4 fault rates", len(res.Rows))
	}
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return n
	}
	atof := func(s string) float64 {
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return f
	}
	// Row 1 is the clean baseline: nothing injected, nothing quarantined.
	if atoi(res.Rows[1][1]) != 0 || atoi(res.Rows[1][2]) != 0 {
		t.Errorf("clean baseline row injected/quarantined nonzero: %v", res.Rows[1])
	}
	prevInjected := -1
	for _, row := range res.Rows[1:] {
		injected, quarantined := atoi(row[1]), atoi(row[2])
		if injected < prevInjected {
			t.Errorf("injected count not monotone in fault rate: %v", res.Rows)
		}
		prevInjected = injected
		// Drops are injected but not quarantined (the runs are gone),
		// so the two counts need not match; both must be sane.
		if quarantined > injected {
			t.Errorf("quarantined %d > injected %d", quarantined, injected)
		}
		for _, col := range []int{3, 4} {
			ks := atof(row[col])
			if math.IsNaN(ks) || ks <= 0 || ks > 1 {
				t.Errorf("mean KS %v out of (0, 1]: %v", ks, row)
			}
		}
		if usable := atoi(row[5]); usable < 2 {
			t.Errorf("usable benchmarks collapsed to %d: %v", usable, row)
		}
	}
	// The 10% row must actually have exercised the quarantine.
	last := res.Rows[len(res.Rows)-1]
	if atoi(last[1]) == 0 || atoi(last[2]) == 0 {
		t.Errorf("10%% fault rate injected/quarantined nothing: %v", last)
	}
	if len(res.Headlines) != 2 {
		t.Fatalf("headlines = %d, want 2", len(res.Headlines))
	}
	for _, h := range res.Headlines {
		if math.IsNaN(h.Measured) || math.IsInf(h.Measured, 0) {
			t.Errorf("headline %q measured %v", h.Name, h.Measured)
		}
	}
}
