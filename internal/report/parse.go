package report

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/distrep"
)

// ParseRep resolves a representation name used on command lines
// ("histogram", "pymaxent"/"maxent", "pearsonrnd"/"pearson").
func ParseRep(name string) (distrep.Kind, error) {
	switch strings.ToLower(name) {
	case "histogram", "hist":
		return distrep.Histogram, nil
	case "pymaxent", "maxent":
		return distrep.MaxEnt, nil
	case "pearsonrnd", "pearson":
		return distrep.PearsonRnd, nil
	default:
		return 0, fmt.Errorf("unknown representation %q (want histogram, pymaxent, or pearsonrnd)", name)
	}
}

// ParseModel resolves a model name used on command lines
// ("knn", "rf"/"randomforest", "xgboost"/"xgb").
func ParseModel(name string) (core.Model, error) {
	switch strings.ToLower(name) {
	case "knn":
		return core.KNN, nil
	case "rf", "randomforest", "forest":
		return core.RandomForest, nil
	case "xgboost", "xgb":
		return core.XGBoost, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want knn, rf, or xgboost)", name)
	}
}
