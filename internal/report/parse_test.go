package report

import (
	"testing"

	"repro/internal/core"
	"repro/internal/distrep"
)

func TestParseRep(t *testing.T) {
	cases := map[string]distrep.Kind{
		"histogram": distrep.Histogram, "hist": distrep.Histogram,
		"pymaxent": distrep.MaxEnt, "maxent": distrep.MaxEnt, "MaxEnt": distrep.MaxEnt,
		"pearsonrnd": distrep.PearsonRnd, "pearson": distrep.PearsonRnd, "PEARSON": distrep.PearsonRnd,
	}
	for in, want := range cases {
		got, err := ParseRep(in)
		if err != nil || got != want {
			t.Errorf("ParseRep(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseRep("gaussian"); err == nil {
		t.Error("unknown representation should fail")
	}
}

func TestParseModel(t *testing.T) {
	cases := map[string]core.Model{
		"knn": core.KNN, "KNN": core.KNN,
		"rf": core.RandomForest, "randomforest": core.RandomForest, "forest": core.RandomForest,
		"xgboost": core.XGBoost, "xgb": core.XGBoost,
	}
	for in, want := range cases {
		got, err := ParseModel(in)
		if err != nil || got != want {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseModel("svm"); err == nil {
		t.Error("unknown model should fail")
	}
}
