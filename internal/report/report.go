package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/measure"
	"repro/internal/perfsim"
	"repro/internal/stats"
	"repro/internal/viz"
)

// Headline pairs a paper-reported number with our measured value.
type Headline struct {
	Name     string
	Paper    float64 // NaN-free; 0 means the paper gives no number
	Measured float64
}

// Result is one regenerated figure.
type Result struct {
	ID    string
	Title string
	// Text is the rendered terminal figure.
	Text string
	// Rows is the figure's data series (first row is the header).
	Rows [][]string
	// Headlines compare paper-reported numbers with measured ones.
	Headlines []Headline
}

// Options scales the evaluation. The zero value selects paper-faithful
// settings sized for a single-core machine.
type Options struct {
	// Seed drives every model and decoder.
	Seed uint64
	// Samples is the few-run profile size for use case 1 (paper: 10).
	Samples int
	// Bins is the Histogram representation's bin count.
	Bins int
	// ForestTrees / XGBRounds / XGBDepth bound the ensemble sizes.
	ForestTrees, XGBRounds, XGBDepth int
	// SweepSamples lists the Figure 6 sample counts.
	SweepSamples []int
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if o.Bins <= 0 {
		o.Bins = 30
	}
	if o.ForestTrees <= 0 {
		o.ForestTrees = 60
	}
	if o.XGBRounds <= 0 {
		o.XGBRounds = 30
	}
	if o.XGBDepth <= 0 {
		o.XGBDepth = 2
	}
	if len(o.SweepSamples) == 0 {
		o.SweepSamples = []int{1, 2, 3, 5, 10, 25, 50, 100}
	}
	return o
}

func (o Options) modelOptions() core.ModelOptions {
	return core.ModelOptions{
		ForestTrees: o.ForestTrees,
		XGBRounds:   o.XGBRounds,
		XGBDepth:    o.XGBDepth,
	}
}

// DefaultCampaign collects the paper-scale measurement campaign: all 60
// Table I benchmarks on both systems, 1,000 distribution runs plus 120
// probe runs each.
func DefaultCampaign(seed uint64) (*measure.Database, error) {
	return measure.Collect(
		[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
		perfsim.TableI(),
		measure.Config{Runs: 1000, ProbeRuns: 120, Seed: seed},
	)
}

// intelAMD fetches both systems or fails loudly.
func intelAMD(db *measure.Database) (*measure.SystemData, *measure.SystemData, error) {
	intel, ok := db.System("intel")
	if !ok {
		return nil, nil, fmt.Errorf("report: database lacks the intel system")
	}
	amd, ok := db.System("amd")
	if !ok {
		return nil, nil, fmt.Errorf("report: database lacks the amd system")
	}
	return intel, amd, nil
}

// subsample returns the first n values normalized to their own mean,
// reproducing the paper's "distribution measured from n samples" panels.
func subsample(rel []float64, n int) []float64 {
	if n > len(rel) {
		n = len(rel)
	}
	return stats.Normalize(append([]float64(nil), rel[:n]...))
}

// Fig1 reproduces Figure 1: the SPEC OMP 376 distribution measured from
// 1,000 samples, its unstable appearance from 2/3/5/10 samples, and the
// prediction from 10 samples.
func Fig1(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	const target = "specomp/376"
	b, ok := intel.Find(target)
	if !ok {
		return nil, fmt.Errorf("report: %s missing from campaign", target)
	}
	rel := b.RelTimes()
	var text strings.Builder
	text.WriteString(viz.DensityPlot(rel, 72, 9,
		fmt.Sprintf("(a) measured, %d samples", len(rel))))
	panels := []struct {
		label string
		n     int
	}{{"b", 2}, {"c", 3}, {"d", 5}, {"e", 10}}
	for _, p := range panels {
		text.WriteString("\n")
		text.WriteString(viz.DensityPlot(subsample(rel, p.n), 72, 9,
			fmt.Sprintf("(%s) measured, %d samples", p.label, p.n)))
	}
	pred, actual, err := core.PredictUC1(intel, target, core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: o.Samples, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	text.WriteString("\n")
	text.WriteString(viz.OverlayPlot(actual, pred, 72, 9,
		fmt.Sprintf("(f) predicted from %d samples (PearsonRnd + kNN)", o.Samples)))

	ks := stats.KSStatistic(pred, actual)
	actualModes := stats.NewKDE(actual).CountModes(1024, 0.08)
	predModes := stats.NewKDE(pred).CountModes(1024, 0.08)
	rows := [][]string{{"panel", "samples", "modes"}}
	for _, n := range []int{1000, 2, 3, 5, 10} {
		sub := rel
		if n < 1000 {
			sub = subsample(rel, n)
		}
		m := "-"
		if n >= 5 {
			m = fmt.Sprint(stats.NewKDE(sub).CountModes(1024, 0.08))
		}
		rows = append(rows, []string{"measured", fmt.Sprint(n), m})
	}
	rows = append(rows, []string{"predicted", fmt.Sprint(o.Samples), fmt.Sprint(predModes)})
	return &Result{
		ID:    "fig1",
		Title: "Figure 1: measured and predicted distributions of SPEC OMP 376",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "376 measured modes (paper: bimodal)", Paper: 2, Measured: float64(actualModes)},
			{Name: "376 predicted modes (paper: bimodal)", Paper: 2, Measured: float64(predModes)},
			{Name: "376 prediction KS (paper: not reported)", Paper: 0, Measured: ks},
		},
	}, nil
}

// Fig3 reproduces Figure 3: the relative-time distribution of every
// benchmark on the Intel system, demonstrating shape diversity.
func Fig3(db *measure.Database, opts Options) (*Result, error) {
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	rows := [][]string{{"benchmark", "std", "skew", "kurt", "modes"}}
	var stds []float64
	multimodal := 0
	ids := make([]string, 0, len(intel.Benchmarks))
	for i := range intel.Benchmarks {
		ids = append(ids, intel.Benchmarks[i].Workload.ID())
	}
	sort.Strings(ids)
	for _, id := range ids {
		b, _ := intel.Find(id)
		rel := b.RelTimes()
		m := stats.ComputeMoments4(rel)
		modes := stats.NewKDE(rel).CountModes(512, 0.1)
		if modes >= 2 {
			multimodal++
		}
		stds = append(stds, m.Std)
		lo, hi := stats.MinMax(rel)
		text.WriteString(fmt.Sprintf("%-26s [%s] std=%.4f modes=%d\n",
			id, viz.Violin(rel, lo, hi, 44), m.Std, modes))
		rows = append(rows, []string{
			id,
			fmt.Sprintf("%.4f", m.Std),
			fmt.Sprintf("%.2f", m.Skew),
			fmt.Sprintf("%.2f", m.Kurt),
			fmt.Sprint(modes),
		})
	}
	minStd, maxStd := stats.MinMax(stds)
	return &Result{
		ID:    "fig3",
		Title: "Figure 3: relative execution time distributions, all benchmarks (Intel)",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "benchmarks with multiple modes (paper: several)", Paper: 0, Measured: float64(multimodal)},
			{Name: "narrowest relative std", Paper: 0, Measured: minStd},
			{Name: "widest relative std", Paper: 0, Measured: maxStd},
		},
	}, nil
}

// gridEval evaluates every representation × model combination and
// renders the violin panel shared by Figures 4 and 7.
func gridEval(eval func(rep distrep.Kind, model core.Model) ([]core.BenchScore, error)) (string, [][]string, map[string]float64, error) {
	var text strings.Builder
	rows := [][]string{{"representation", "model", "meanKS", "medianKS", "q1", "q3"}}
	means := map[string]float64{}
	for _, rep := range distrep.Kinds() {
		for _, model := range core.Models() {
			scores, err := eval(rep, model)
			if err != nil {
				return "", nil, nil, fmt.Errorf("%v/%v: %w", rep, model, err)
			}
			ks := core.KSValues(scores)
			label := fmt.Sprintf("%s + %s", rep, model)
			text.WriteString(viz.ViolinRow(label, ks, 0, 1, 40) + "\n")
			v := stats.Summarize(ks)
			means[label] = v.Mean
			rows = append(rows, []string{
				rep.String(), model.String(),
				fmt.Sprintf("%.3f", v.Mean),
				fmt.Sprintf("%.3f", v.Median),
				fmt.Sprintf("%.3f", v.Q1),
				fmt.Sprintf("%.3f", v.Q3),
			})
		}
	}
	return text.String(), rows, means, nil
}

// Fig4 reproduces Figure 4: use case 1 KS violins per representation ×
// model on the Intel system with 10 runs.
func Fig4(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	text, rows, means, err := gridEval(func(rep distrep.Kind, model core.Model) ([]core.BenchScore, error) {
		return core.EvaluateUC1(intel, core.UC1Config{
			Rep: rep, Model: model, NumSamples: o.Samples,
			Bins: o.Bins, Seed: o.Seed, Models: o.modelOptions(),
		})
	})
	if err != nil {
		return nil, err
	}
	// The paper notes kNN's edge over the tree ensembles is "more
	// prominent with a lower number of samples"; quantify that with a
	// 3-sample comparison.
	lowKNN, err := core.EvaluateUC1(intel, core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: 3,
		Seed: o.Seed, Models: o.modelOptions(),
	})
	if err != nil {
		return nil, err
	}
	lowRF, err := core.EvaluateUC1(intel, core.UC1Config{
		Rep: distrep.PearsonRnd, Model: core.RandomForest, NumSamples: 3,
		Seed: o.Seed, Models: o.modelOptions(),
	})
	if err != nil {
		return nil, err
	}
	lowGap := stats.Mean(core.KSValues(lowRF)) - stats.Mean(core.KSValues(lowKNN))
	return &Result{
		ID:    "fig4",
		Title: "Figure 4: UC1 KS by representation and model (Intel, 10 runs)",
		Text:  text,
		Rows:  rows,
		Headlines: []Headline{
			{Name: "UC1 PearsonRnd+kNN mean KS", Paper: 0.241, Measured: means["PearsonRnd + kNN"]},
			{Name: "UC1 Histogram best-model mean KS", Paper: 0.278, Measured: minOf(means, "Histogram + ")},
			{Name: "UC1 PyMaxEnt best-model mean KS", Paper: 0.302, Measured: minOf(means, "PyMaxEnt + ")},
			{Name: "UC1 XGBoost (PearsonRnd) mean KS", Paper: 0.247, Measured: means["PearsonRnd + XGBoost"]},
			{Name: "UC1 RF (PearsonRnd) mean KS", Paper: 0.248, Measured: means["PearsonRnd + RF"]},
			{Name: "UC1 RF minus kNN mean KS at 3 samples (paper: kNN edge grows with fewer samples)",
				Paper: 0, Measured: lowGap},
		},
	}, nil
}

func minOf(means map[string]float64, prefix string) float64 {
	best := 1.0
	for k, v := range means {
		if strings.HasPrefix(k, prefix) && v < best {
			best = v
		}
	}
	return best
}

// overlayFigure renders predicted-vs-actual overlays for a benchmark
// selection spanning the KS spectrum.
func overlayFigure(id, title string, selection []string,
	predict func(bench string) (pred, actual []float64, err error)) (*Result, error) {

	var text strings.Builder
	rows := [][]string{{"benchmark", "KS", "actualModes", "predictedModes"}}
	var headlines []Headline
	for _, benchID := range selection {
		pred, actual, err := predict(benchID)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", benchID, err)
		}
		ks := stats.KSStatistic(pred, actual)
		am := stats.NewKDE(actual).CountModes(512, 0.1)
		pm := stats.NewKDE(pred).CountModes(512, 0.1)
		text.WriteString(viz.OverlayPlot(actual, pred, 64, 8,
			fmt.Sprintf("%s  (KS=%.3f)", benchID, ks)))
		text.WriteString("\n")
		rows = append(rows, []string{benchID, fmt.Sprintf("%.3f", ks), fmt.Sprint(am), fmt.Sprint(pm)})
	}
	return &Result{ID: id, Title: title, Text: text.String(), Rows: rows, Headlines: headlines}, nil
}

// Fig5 reproduces Figure 5: UC1 overlays of predicted and actual
// distributions for selected benchmarks (PearsonRnd + kNN, 10 runs).
func Fig5(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	selection := []string{
		"specaccel/359", "specaccel/304", "npb/bt", "rodinia/heartwall",
		"mllib/dtclassifier", "rodinia/ludomp", "specaccel/303",
		"specomp/376", "parboil/mrigridding", "parsec/streamcluster",
	}
	return overlayFigure("fig5",
		"Figure 5: UC1 predicted vs actual overlays (Intel, PearsonRnd + kNN, 10 runs)",
		selection,
		func(bench string) ([]float64, []float64, error) {
			return core.PredictUC1(intel, bench, core.UC1Config{
				Rep: distrep.PearsonRnd, Model: core.KNN,
				NumSamples: o.Samples, Seed: o.Seed,
			})
		})
}

// Fig6 reproduces Figure 6: UC1 KS as a function of the number of runs
// the profile is built from (PearsonRnd + kNN, Intel).
func Fig6(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, _, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	rows := [][]string{{"samples", "meanKS", "medianKS", "q1", "q3"}}
	var means []float64
	for _, n := range o.SweepSamples {
		scores, err := core.EvaluateUC1(intel, core.UC1Config{
			Rep: distrep.PearsonRnd, Model: core.KNN, NumSamples: n, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ks := core.KSValues(scores)
		text.WriteString(viz.ViolinRow(fmt.Sprintf("%d samples", n), ks, 0, 1, 40) + "\n")
		v := stats.Summarize(ks)
		means = append(means, v.Mean)
		rows = append(rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%.3f", v.Mean),
			fmt.Sprintf("%.3f", v.Median),
			fmt.Sprintf("%.3f", v.Q1),
			fmt.Sprintf("%.3f", v.Q3),
		})
	}
	return &Result{
		ID:    "fig6",
		Title: "Figure 6: UC1 KS vs number of samples (Intel, PearsonRnd + kNN)",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "1-sample mean KS minus many-sample mean KS (paper: large positive)",
				Paper: 0, Measured: means[0] - means[len(means)-1]},
		},
	}, nil
}

// Fig7 reproduces Figure 7: use case 2 KS violins per representation ×
// model, measuring on AMD and predicting for Intel.
func Fig7(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, amd, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	text, rows, means, err := gridEval(func(rep distrep.Kind, model core.Model) ([]core.BenchScore, error) {
		return core.EvaluateUC2(amd, intel, core.UC2Config{
			Rep: rep, Model: model, Bins: o.Bins, Seed: o.Seed, Models: o.modelOptions(),
		})
	})
	if err != nil {
		return nil, err
	}
	return &Result{
		ID:    "fig7",
		Title: "Figure 7: UC2 KS by representation and model (AMD → Intel)",
		Text:  text,
		Rows:  rows,
		Headlines: []Headline{
			{Name: "UC2 PearsonRnd+kNN mean KS", Paper: 0.236, Measured: means["PearsonRnd + kNN"]},
			{Name: "UC2 Histogram best-model mean KS", Paper: 0.264, Measured: minOf(means, "Histogram + ")},
			{Name: "UC2 PyMaxEnt best-model mean KS", Paper: 0.277, Measured: minOf(means, "PyMaxEnt + ")},
			{Name: "UC2 XGBoost (PearsonRnd) mean KS", Paper: 0.291, Measured: means["PearsonRnd + XGBoost"]},
			{Name: "UC2 RF (PearsonRnd) mean KS", Paper: 0.263, Measured: means["PearsonRnd + RF"]},
		},
	}, nil
}

// Fig8 reproduces Figure 8: use case 2 KS for both prediction
// directions (PearsonRnd + kNN).
func Fig8(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, amd, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	var text strings.Builder
	rows := [][]string{{"direction", "meanKS", "medianKS"}}
	var meanA2I, meanI2A float64
	for _, dir := range []struct {
		label    string
		src, dst *measure.SystemData
	}{
		{"AMD → Intel", amd, intel},
		{"Intel → AMD", intel, amd},
	} {
		scores, err := core.EvaluateUC2(dir.src, dir.dst, core.UC2Config{
			Rep: distrep.PearsonRnd, Model: core.KNN, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		ks := core.KSValues(scores)
		text.WriteString(viz.ViolinRow(dir.label, ks, 0, 1, 40) + "\n")
		v := stats.Summarize(ks)
		if dir.label == "AMD → Intel" {
			meanA2I = v.Mean
		} else {
			meanI2A = v.Mean
		}
		rows = append(rows, []string{dir.label, fmt.Sprintf("%.3f", v.Mean), fmt.Sprintf("%.3f", v.Median)})
	}
	return &Result{
		ID:    "fig8",
		Title: "Figure 8: UC2 KS by prediction direction (PearsonRnd + kNN)",
		Text:  text.String(),
		Rows:  rows,
		Headlines: []Headline{
			{Name: "Intel→AMD minus AMD→Intel mean KS (paper: slightly positive)",
				Paper: 0, Measured: meanI2A - meanA2I},
		},
	}, nil
}

// Fig9 reproduces Figure 9: UC2 overlays of predicted and actual
// distributions for selected benchmarks (AMD → Intel, PearsonRnd + kNN).
func Fig9(db *measure.Database, opts Options) (*Result, error) {
	o := opts.withDefaults()
	intel, amd, err := intelAMD(db)
	if err != nil {
		return nil, err
	}
	selection := []string{
		"npb/is", "rodinia/heartwall", "parboil/spmv", "parboil/bfs",
		"mllib/gbtclassifier", "parboil/sgemm", "parsec/bodytrack",
		"parsec/canneal", "mllib/correlation", "parboil/histo",
	}
	return overlayFigure("fig9",
		"Figure 9: UC2 predicted vs actual overlays (AMD → Intel, PearsonRnd + kNN)",
		selection,
		func(bench string) ([]float64, []float64, error) {
			return core.PredictUC2(amd, intel, bench, core.UC2Config{
				Rep: distrep.PearsonRnd, Model: core.KNN, Seed: o.Seed,
			})
		})
}

// Figures maps figure IDs to their drivers.
func Figures() map[string]func(*measure.Database, Options) (*Result, error) {
	return map[string]func(*measure.Database, Options) (*Result, error){
		"fig1": Fig1, "fig3": Fig3, "fig4": Fig4, "fig5": Fig5,
		"fig6": Fig6, "fig7": Fig7, "fig8": Fig8, "fig9": Fig9,
	}
}

// FigureIDs lists the figure identifiers in paper order.
func FigureIDs() []string {
	return []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"}
}

// All regenerates every figure in paper order.
func All(db *measure.Database, opts Options) ([]*Result, error) {
	figs := Figures()
	out := make([]*Result, 0, len(FigureIDs()))
	for _, id := range FigureIDs() {
		r, err := figs[id](db, opts)
		if err != nil {
			return nil, fmt.Errorf("report: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// Render formats one result for the terminal.
func Render(r *Result) string {
	var b strings.Builder
	b.WriteString("=== " + r.Title + " ===\n\n")
	b.WriteString(r.Text)
	b.WriteString("\n")
	b.WriteString(viz.Table(r.Rows))
	if len(r.Headlines) > 0 {
		b.WriteString("\npaper vs measured:\n")
		hr := [][]string{{"quantity", "paper", "measured"}}
		for _, h := range r.Headlines {
			paper := "-"
			if h.Paper != 0 {
				paper = fmt.Sprintf("%.3f", h.Paper)
			}
			hr = append(hr, []string{h.Name, paper, fmt.Sprintf("%.3f", h.Measured)})
		}
		b.WriteString(viz.Table(hr))
	}
	return b.String()
}
