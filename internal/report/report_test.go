package report

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/measure"
	"repro/internal/perfsim"
)

var (
	dbOnce sync.Once
	db     *measure.Database
)

// reducedDB collects a small campaign shared by the report tests.
func reducedDB(t *testing.T) *measure.Database {
	t.Helper()
	dbOnce.Do(func() {
		d, err := measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI(),
			measure.Config{Runs: 150, ProbeRuns: 30, Seed: 99},
		)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		db = d
	})
	if db == nil {
		t.Fatal("campaign unavailable")
	}
	return db
}

// fastOpts keeps ensemble sizes tiny for test speed.
func fastOpts() Options {
	return Options{
		Seed: 5, Samples: 5, Bins: 15,
		ForestTrees: 8, XGBRounds: 5, XGBDepth: 2,
		SweepSamples: []int{1, 5, 25},
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Samples != 10 || o.Bins != 30 || o.Seed != 1 || len(o.SweepSamples) != 8 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestFig1(t *testing.T) {
	r, err := Fig1(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Text, "(a) measured, 150 samples") {
		t.Error("panel (a) missing")
	}
	for _, panel := range []string{"(b) measured, 2 samples", "(e) measured, 10 samples", "(f) predicted"} {
		if !strings.Contains(r.Text, panel) {
			t.Errorf("panel %q missing", panel)
		}
	}
	var measuredModes float64
	for _, h := range r.Headlines {
		if strings.Contains(h.Name, "376 measured modes") {
			measuredModes = h.Measured
		}
	}
	if measuredModes < 2 {
		t.Errorf("376 measured modes = %v, want >= 2", measuredModes)
	}
}

func TestFig3(t *testing.T) {
	r, err := Fig3(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 61 { // header + 60 benchmarks
		t.Fatalf("rows = %d, want 61", len(r.Rows))
	}
	if !strings.Contains(r.Text, "specomp/376") {
		t.Error("fig3 text missing benchmarks")
	}
}

func TestFig4GridComplete(t *testing.T) {
	r, err := Fig4(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 10 { // header + 3 reps × 3 models
		t.Fatalf("rows = %d, want 10", len(r.Rows))
	}
	if len(r.Headlines) != 6 {
		t.Errorf("headlines = %d", len(r.Headlines))
	}
	for _, h := range r.Headlines[:5] {
		if h.Measured <= 0 || h.Measured >= 1 {
			t.Errorf("%s: measured = %v implausible", h.Name, h.Measured)
		}
	}
}

func TestFig5And9Overlays(t *testing.T) {
	r5, err := Fig5(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r5.Rows) != 11 {
		t.Fatalf("fig5 rows = %d, want 11", len(r5.Rows))
	}
	if !strings.Contains(r5.Text, "legend") {
		t.Error("fig5 missing overlay legend")
	}
	r9, err := Fig9(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r9.Rows) != 11 {
		t.Fatalf("fig9 rows = %d, want 11", len(r9.Rows))
	}
}

func TestFig6SweepMonotoneTrend(t *testing.T) {
	r, err := Fig6(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 { // header + 3 sweep points
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// On the reduced test campaign the sweep is noisy; require only that
	// the 1-sample configuration is not clearly *better* than many
	// samples (the full-scale trend is asserted in internal/core).
	if r.Headlines[0].Measured < -0.02 {
		t.Errorf("1-sample penalty = %v, want non-negative (Figure 6 trend)", r.Headlines[0].Measured)
	}
}

func TestFig7And8(t *testing.T) {
	r7, err := Fig7(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r7.Rows) != 10 {
		t.Fatalf("fig7 rows = %d", len(r7.Rows))
	}
	r8, err := Fig8(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r8.Rows) != 3 {
		t.Fatalf("fig8 rows = %d", len(r8.Rows))
	}
}

func TestRenderIncludesEverything(t *testing.T) {
	r, err := Fig8(reducedDB(t), fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	out := Render(r)
	for _, want := range []string{"Figure 8", "AMD → Intel", "paper vs measured"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestFigureRegistryComplete(t *testing.T) {
	figs := Figures()
	for _, id := range FigureIDs() {
		if figs[id] == nil {
			t.Errorf("figure %s missing from registry", id)
		}
	}
	if len(FigureIDs()) != 8 {
		t.Errorf("figure count = %d, want 8 (Figs 1, 3-9)", len(FigureIDs()))
	}
}

func TestFiguresFailWithoutSystems(t *testing.T) {
	bad := &measure.Database{}
	for _, id := range FigureIDs() {
		if _, err := Figures()[id](bad, fastOpts()); err == nil {
			t.Errorf("%s: expected error for empty database", id)
		}
	}
}

func TestExtensionsRun(t *testing.T) {
	db := reducedDB(t)
	for _, id := range ExtensionIDs() {
		r, err := Extensions()[id](db, fastOpts())
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id || r.Title == "" || len(r.Rows) < 2 {
			t.Errorf("%s: malformed result: id=%q rows=%d", id, r.ID, len(r.Rows))
		}
		if Render(r) == "" {
			t.Errorf("%s: empty render", id)
		}
	}
}

func TestExt3AgreementBounds(t *testing.T) {
	db := reducedDB(t)
	r, err := Ext3DivergenceRobustness(db, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	agree := r.Headlines[0].Measured
	if agree < 1 || agree > 5 {
		t.Errorf("agreement count = %v, want within [1,5]", agree)
	}
}

func TestExt4ReportsAdaptiveCosts(t *testing.T) {
	db := reducedDB(t)
	r, err := Ext4AdaptiveCost(db, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 11 {
		t.Fatalf("rows = %d, want 11", len(r.Rows))
	}
	if r.Headlines[0].Measured < 10 {
		t.Errorf("mean adaptive run cost = %v, want >= MinRuns", r.Headlines[0].Measured)
	}
}

func TestExt5TopMetricsPlausible(t *testing.T) {
	db := reducedDB(t)
	r, err := Ext5FeatureImportance(db, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if share := r.Headlines[0].Measured; share <= 0 || share > 1 {
		t.Errorf("top-15 share = %v, want in (0, 1]", share)
	}
}
