package serve

import "repro/internal/randx"

// clock is the package's single time source. Request latency, uptime,
// and load-generation stopwatches all read through it so that tests can
// freeze or step time; production uses the wall clock.
var clock = randx.SystemClock

// SetClock overrides the serving clock. Tests that assert on latency or
// uptime numbers install a randx.FixedClock/StepClock and restore
// randx.SystemClock afterwards. Not safe to call while a server is
// handling requests.
func SetClock(c randx.Clock) { clock = c }
