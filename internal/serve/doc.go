// Package serve turns the paper's predictors into a long-running HTTP
// service: the deployment story the paper motivates (predict a full
// run-time distribution from a few probe runs, so operators can make
// scheduling and acquisition decisions online) as a request/response
// workload instead of a batch CLI run.
//
// The server exposes:
//
//	POST /v1/predict/uc1   few-run, same-system prediction (use case 1)
//	POST /v1/predict/uc2   cross-system prediction (use case 2)
//	GET  /v1/systems       systems, benchmark IDs, campaign parameters
//	GET  /healthz          liveness
//	GET  /readyz           readiness (flips off during graceful drain)
//	GET  /metrics          expvar-based counters, latency percentiles,
//	                       and model-cache hit/miss statistics
//
// Performance comes from core.Predictor's trained-model cache: the
// first request for a (system, config, benchmark) key pays for dataset
// assembly and model fitting; every identical request after it is a
// cache hit that only runs the O(predict) path. Requests are bounded by
// a worker semaphore and a per-request timeout, and the server drains
// gracefully on context cancellation (SIGTERM in cmd/varserve).
//
// Loadgen (also wired into cmd/varserve -loadgen) hammers a running
// server and reports throughput plus cold-versus-warm latency
// percentiles, making the cache speedup measurable; EXPERIMENTS.md
// records a reference run.
package serve
