package serve

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/measure"
	"repro/internal/perfsim"
)

// FuzzPredictRequestDecode throws arbitrary bytes at the single-predict
// wire path: JSON decode, field validation for both use cases, the
// model/representation parsers, and the probe-profile conversion. None
// of it may panic, and the validators must reject or accept — never
// crash — whatever decodes.
func FuzzPredictRequestDecode(f *testing.F) {
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","seed":7}`))
	f.Add([]byte(`{"source":"amd","target":"intel","benchmark":"npb/bt","model":"rf"}`))
	f.Add([]byte(`{"system":"intel","probe_runs":[{"seconds":1.5,"metrics":[1,2,3]}],"n":200}`))
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","model":"svm","representation":"fourier"}`))
	f.Add([]byte(`{"system":"intel","probe_runs":[{"seconds":-1,"metrics":[]}],"samples":-3,"bins":-1}`))
	f.Add([]byte(`{"seed":18446744073709551615}`))
	f.Add([]byte("{\"system\":\" \",\"benchmark\":\"\\u0000\"}"))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req PredictRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // malformed JSON is the decoder's job to reject
		}
		for _, uc := range []int{1, 2} {
			_ = validateRequest(&req, uc)
		}
		if m, err := parseModel(req.Model); err == nil && m.String() == "" {
			t.Fatalf("parseModel(%q) accepted a nameless model", req.Model)
		}
		if _, err := parseRep(req.Representation); err == nil && req.Representation != "" {
			// Accepted names must round-trip through the parser again.
			if _, err2 := parseRep(req.Representation); err2 != nil {
				t.Fatalf("parseRep(%q) not idempotent", req.Representation)
			}
		}
		runs := req.probeRuns()
		if len(runs) != len(req.ProbeRuns) {
			t.Fatalf("toRuns dropped profiles: %d != %d", len(runs), len(req.ProbeRuns))
		}
		for i, r := range runs {
			a, b := r.Seconds, req.ProbeRuns[i].Seconds
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("run %d seconds mangled: %v != %v", i, a, b)
			}
		}
	})
}

// FuzzBatchPredictRequestDecode covers the batch wire path: decode plus
// the handler's own cap/shape checks, mirroring handleUC1Batch's
// validation order without spinning up a server.
func FuzzBatchPredictRequestDecode(f *testing.F) {
	f.Add([]byte(`{"system":"intel","profiles":[[{"seconds":1,"metrics":[1,2]}]],"n":100,"seed":3}`))
	f.Add([]byte(`{"system":"intel","profiles":[]}`))
	f.Add([]byte(`{"profiles":[[{"seconds":1,"metrics":[1]}]]}`))
	f.Add([]byte(`{"system":"intel","profiles":[[],[{"seconds":0,"metrics":null}]]}`))
	f.Add([]byte(`{"system":"intel","profiles":null,"bins":2147483647}`))
	f.Add([]byte(`{"pro`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchPredictRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		_, _ = parseModel(req.Model)
		_, _ = parseRep(req.Representation)
		for _, p := range req.Profiles {
			if got := toRuns(p); len(got) != len(p) {
				t.Fatalf("toRuns dropped profiles: %d != %d", len(got), len(p))
			}
		}
	})
}

// FuzzMeasurementsRequestDecode covers the streaming-ingest wire path:
// JSON decode, the handler's shape checks, the run conversion, and the
// quarantine validation the batch flows into. Nothing may panic, the
// decoded batch must never be mutated by validation, and the
// quarantine counters must stay consistent with the partition.
func FuzzMeasurementsRequestDecode(f *testing.F) {
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","runs":[{"seconds":1.5,"metrics":[1,2,3]}]}`))
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","runs":[]}`))
	f.Add([]byte(`{"system":"","benchmark":"npb/bt","runs":[{"seconds":-1,"metrics":[]}]}`))
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","runs":[{"seconds":1e308,"metrics":[null]}]}`))
	f.Add([]byte(`{"runs":[{"metrics":[1,2]},{"seconds":2},{"seconds":0.5,"metrics":[3,4]}]}`))
	f.Add([]byte(`{"system":"\\u0000","benchmark":" ","runs":[{"seconds":1,"metrics":[-1,2]}]}`))
	f.Add([]byte(`{"sys`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[{"seconds":1}]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req MeasurementsRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // malformed JSON is the decoder's job to reject
		}
		// The handler's own shape checks must never panic.
		_ = req.System == "" || req.Benchmark == ""
		_ = len(req.Runs) == 0 || len(req.Runs) > maxIngestRuns
		runs := toRuns(req.Runs)
		if len(runs) != len(req.Runs) {
			t.Fatalf("toRuns dropped runs: %d != %d", len(runs), len(req.Runs))
		}
		// Deep-copy by hand: CloneRuns would normalize empty metric
		// slices to nil, which DeepEqual distinguishes from []float64{}.
		backup := make([]perfsim.Run, len(runs))
		for i, r := range runs {
			backup[i] = r
			if r.Metrics != nil {
				backup[i].Metrics = append(make([]float64, 0, len(r.Metrics)), r.Metrics...)
			}
		}
		for _, nMetrics := range []int{0, 3} {
			kept, rep := measure.ValidateRuns(runs, nMetrics, 0, measure.ValidationPolicy{})
			if rep.Total != len(runs) {
				t.Fatalf("report total %d != batch %d", rep.Total, len(runs))
			}
			if rep.Kept != len(kept) || rep.Kept+rep.Quarantined != rep.Total {
				t.Fatalf("inconsistent counters: %+v with %d kept", rep, len(kept))
			}
			if rep.Quarantined > 0 && len(rep.ByClass) == 0 {
				t.Fatalf("quarantine without defect classes: %+v", rep)
			}
		}
		// NaN-free inputs must come through validation untouched
		// (DeepEqual cannot certify NaN payloads; skip those).
		if !hasNaN(runs) && !reflect.DeepEqual(runs, backup) {
			t.Fatal("validation mutated the decoded batch")
		}
	})
}

func hasNaN(runs []perfsim.Run) bool {
	for _, r := range runs {
		if math.IsNaN(r.Seconds) {
			return true
		}
		for _, v := range r.Metrics {
			if math.IsNaN(v) {
				return true
			}
		}
	}
	return false
}
