package serve

import (
	"encoding/json"
	"math"
	"testing"
)

// FuzzPredictRequestDecode throws arbitrary bytes at the single-predict
// wire path: JSON decode, field validation for both use cases, the
// model/representation parsers, and the probe-profile conversion. None
// of it may panic, and the validators must reject or accept — never
// crash — whatever decodes.
func FuzzPredictRequestDecode(f *testing.F) {
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","seed":7}`))
	f.Add([]byte(`{"source":"amd","target":"intel","benchmark":"npb/bt","model":"rf"}`))
	f.Add([]byte(`{"system":"intel","probe_runs":[{"seconds":1.5,"metrics":[1,2,3]}],"n":200}`))
	f.Add([]byte(`{"system":"intel","benchmark":"npb/bt","model":"svm","representation":"fourier"}`))
	f.Add([]byte(`{"system":"intel","probe_runs":[{"seconds":-1,"metrics":[]}],"samples":-3,"bins":-1}`))
	f.Add([]byte(`{"seed":18446744073709551615}`))
	f.Add([]byte("{\"system\":\" \",\"benchmark\":\"\\u0000\"}"))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req PredictRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return // malformed JSON is the decoder's job to reject
		}
		for _, uc := range []int{1, 2} {
			_ = validateRequest(&req, uc)
		}
		if m, err := parseModel(req.Model); err == nil && m.String() == "" {
			t.Fatalf("parseModel(%q) accepted a nameless model", req.Model)
		}
		if _, err := parseRep(req.Representation); err == nil && req.Representation != "" {
			// Accepted names must round-trip through the parser again.
			if _, err2 := parseRep(req.Representation); err2 != nil {
				t.Fatalf("parseRep(%q) not idempotent", req.Representation)
			}
		}
		runs := req.probeRuns()
		if len(runs) != len(req.ProbeRuns) {
			t.Fatalf("toRuns dropped profiles: %d != %d", len(runs), len(req.ProbeRuns))
		}
		for i, r := range runs {
			a, b := r.Seconds, req.ProbeRuns[i].Seconds
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("run %d seconds mangled: %v != %v", i, a, b)
			}
		}
	})
}

// FuzzBatchPredictRequestDecode covers the batch wire path: decode plus
// the handler's own cap/shape checks, mirroring handleUC1Batch's
// validation order without spinning up a server.
func FuzzBatchPredictRequestDecode(f *testing.F) {
	f.Add([]byte(`{"system":"intel","profiles":[[{"seconds":1,"metrics":[1,2]}]],"n":100,"seed":3}`))
	f.Add([]byte(`{"system":"intel","profiles":[]}`))
	f.Add([]byte(`{"profiles":[[{"seconds":1,"metrics":[1]}]]}`))
	f.Add([]byte(`{"system":"intel","profiles":[[],[{"seconds":0,"metrics":null}]]}`))
	f.Add([]byte(`{"system":"intel","profiles":null,"bins":2147483647}`))
	f.Add([]byte(`{"pro`))

	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchPredictRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		_, _ = parseModel(req.Model)
		_, _ = parseRep(req.Representation)
		for _, p := range req.Profiles {
			if got := toRuns(p); len(got) != len(p) {
				t.Fatalf("toRuns dropped profiles: %d != %d", len(got), len(p))
			}
		}
	})
}
