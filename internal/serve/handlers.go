package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/perfsim"
	"repro/internal/stats"
)

// maxBodyBytes bounds request bodies; a raw probe profile of 100 runs
// with dozens of metrics fits comfortably.
const maxBodyBytes = 4 << 20

// maxBatchProfiles bounds one batch request so a single client cannot
// monopolize the worker pool with an arbitrarily large fan-out.
const maxBatchProfiles = 256

// statusClientClosedRequest is nginx's convention for "the client went
// away before we could answer".
const statusClientClosedRequest = 499

// bufPool holds request-scoped byte buffers for body reads and response
// encoding, so the steady-state request path reuses one warm buffer per
// worker instead of allocating per call. Buffers are returned only
// after their bytes are fully consumed (json.Unmarshal copies what it
// keeps; responses are flushed before release).
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readBody reads at most maxBodyBytes of r's body into a pooled
// buffer. The cap is enforced with http.MaxBytesReader rather than a
// silent LimitReader truncation: an oversized body surfaces as a
// *http.MaxBytesError (rendered as a structured 413 by
// writeBodyError) instead of a confusing JSON decode error on a
// half-read document, and the connection is closed so the client
// stops uploading. The returned release func recycles the buffer; the
// byte slice must not be used after calling it.
func readBody(w http.ResponseWriter, r *http.Request) (body []byte, release func(), err error) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	release = func() { bufPool.Put(buf) }
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		release()
		return nil, nil, err
	}
	return buf.Bytes(), release, nil
}

// writeBodyError renders a body-read failure: a structured 413 for
// bodies over the cap, 400 for transport errors.
func writeBodyError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit))
		return
	}
	writeError(w, http.StatusBadRequest, fmt.Sprintf("read body: %v", err))
}

// maxQueueWait bounds how long a request queues for a worker slot once
// the pool is saturated. Past it the server sheds the request with 503
// + Retry-After instead of holding the connection open until the
// request deadline — load shedding beats queue collapse.
const maxQueueWait = time.Second

// acquireWorker takes a worker slot: immediately when one is free,
// otherwise queueing up to maxQueueWait (but never past the request
// deadline). It writes the 503/504/499 response itself on failure and
// reports whether the slot was acquired.
func (s *Server) acquireWorker(ctx context.Context, w http.ResponseWriter, phase string) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	s.metrics.saturated.Add(1)
	queue := time.NewTimer(maxQueueWait)
	defer queue.Stop()
	select {
	case s.sem <- struct{}{}:
		return true
	case <-ctx.Done():
		writeTimeout(ctx, w, phase)
		return false
	case <-queue.C:
		setRetryAfter(w, maxQueueWait)
		writeError(w, http.StatusServiceUnavailable, "worker pool saturated; retry later")
		return false
	}
}

func (s *Server) handleUC1(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, 1) }
func (s *Server) handleUC2(w http.ResponseWriter, r *http.Request) { s.handlePredict(w, r, 2) }

// handlePredict is the shared request path of both endpoints: decode,
// validate, acquire a worker, predict under the request deadline, and
// render the distribution summary.
func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request, useCase int) {
	start := clock()
	body, release, err := readBody(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req PredictRequest
	err = json.Unmarshal(body, &req)
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if err := validateRequest(&req, useCase); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := parseRep(req.Representation)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	// Bounded worker pool: take a slot, queueing briefly under
	// saturation and shedding with 503 + Retry-After past that.
	if !s.acquireWorker(ctx, w, "waiting for a worker") {
		return
	}

	type outcome struct {
		pred *core.Prediction
		err  error
	}
	done := make(chan outcome, 1)
	//lint:allow goroutinecheck request-scoped worker already holds a pool slot (s.sem); freeing it is this goroutine's job
	go func() {
		defer func() { <-s.sem }()
		p, err := s.predict(ctx, &req, useCase, model, rep)
		done <- outcome{p, err}
	}()

	select {
	case <-ctx.Done():
		// The worker goroutine finishes in the background and frees its
		// slot; we just stop waiting for it.
		writeTimeout(ctx, w, "prediction")
		return
	case out := <-done:
		if out.err != nil {
			writePredictError(w, out.err)
			return
		}
		resp := buildResponse(&req, useCase, out.pred)
		resp.ElapsedMS = float64(clock.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, resp)
	}
}

// handleUC1Batch predicts many raw probe profiles in one request: all
// profiles share one cached deployment model, and the per-profile
// predictions fan out across the shared worker pool (core's
// PredictBatch path). The whole batch occupies a single worker slot and
// runs under the normal request deadline.
func (s *Server) handleUC1Batch(w http.ResponseWriter, r *http.Request) {
	start := clock()
	body, release, err := readBody(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req BatchPredictRequest
	err = json.Unmarshal(body, &req)
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.System == "" {
		writeError(w, http.StatusBadRequest, `"system" is required`)
		return
	}
	if len(req.Profiles) == 0 {
		writeError(w, http.StatusBadRequest, `"profiles" must contain at least one probe profile`)
		return
	}
	if len(req.Profiles) > maxBatchProfiles {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d profiles exceeds the limit of %d", len(req.Profiles), maxBatchProfiles))
		return
	}
	model, err := parseModel(req.Model)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	rep, err := parseRep(req.Representation)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.Seed == 0 {
		req.Seed = 1
	}
	cfg := core.UC1Config{Rep: rep, Model: model, NumSamples: req.Samples, Bins: req.Bins, Seed: req.Seed}
	if cfg.NumSamples <= 0 {
		cfg.NumSamples = 10 // the paper's profile budget
	}
	probes := make([][]perfsim.Run, len(req.Profiles))
	for i, prs := range req.Profiles {
		probes[i] = toRuns(prs)
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	if !s.acquireWorker(ctx, w, "waiting for a worker") {
		return
	}

	type outcome struct {
		preds []*core.Prediction
		err   error
	}
	done := make(chan outcome, 1)
	//lint:allow goroutinecheck request-scoped worker already holds a pool slot (s.sem); freeing it is this goroutine's job
	go func() {
		defer func() { <-s.sem }()
		preds, err := s.pred.PredictUC1ProfileBatch(ctx, req.System, probes, req.N, cfg)
		done <- outcome{preds, err}
	}()

	select {
	case <-ctx.Done():
		writeTimeout(ctx, w, "batch prediction")
	case out := <-done:
		if out.err != nil {
			writePredictError(w, out.err)
			return
		}
		resp := &BatchPredictResponse{
			UseCase:        1,
			System:         req.System,
			Model:          model.String(),
			Representation: rep.String(),
			Seed:           req.Seed,
			Count:          len(out.preds),
			Cache:          "miss",
		}
		if out.preds[0].CacheHit {
			resp.Cache = "hit"
		}
		resp.Degraded = out.preds[0].Degraded
		resp.Fallback = out.preds[0].Fallback
		for _, p := range out.preds {
			resp.Results = append(resp.Results, BatchResultJSON{
				N:         len(p.Predicted),
				Quantiles: quantileMap(p.Predicted),
				Histogram: histogramJSON(p.Predicted, req.Bins),
				Moments:   momentsJSON(p.Predicted),
				Modes:     countModes(p.Predicted),
			})
		}
		resp.ElapsedMS = float64(clock.Since(start)) / float64(time.Millisecond)
		writeJSON(w, http.StatusOK, resp)
	}
}

// predict dispatches to the cached predictor. ctx carries the request
// trace span; the predictor methods hang their fit/predict children
// off it.
func (s *Server) predict(ctx context.Context, req *PredictRequest, useCase int, model core.Model, rep distrep.Kind) (*core.Prediction, error) {
	switch useCase {
	case 1:
		cfg := core.UC1Config{Rep: rep, Model: model, NumSamples: req.Samples, Bins: req.Bins, Seed: req.Seed}
		if cfg.NumSamples <= 0 {
			cfg.NumSamples = 10 // the paper's profile budget
		}
		if req.Benchmark != "" {
			return s.pred.PredictUC1(ctx, req.System, req.Benchmark, cfg)
		}
		return s.pred.PredictUC1Profile(ctx, req.System, req.probeRuns(), req.N, cfg)
	default:
		cfg := core.UC2Config{Rep: rep, Model: model, Bins: req.Bins, Seed: req.Seed}
		if req.Benchmark != "" {
			return s.pred.PredictUC2(ctx, req.Source, req.Target, req.Benchmark, cfg)
		}
		return s.pred.PredictUC2Profile(ctx, req.Source, req.Target, req.probeRuns(), req.SourceRelTimes, req.N, cfg)
	}
}

// validateRequest enforces the per-use-case field contract.
func validateRequest(req *PredictRequest, useCase int) error {
	hasBench := req.Benchmark != ""
	hasProbe := len(req.ProbeRuns) > 0
	if hasBench == hasProbe {
		return errors.New(`exactly one of "benchmark" or "probe_runs" must be set`)
	}
	switch useCase {
	case 1:
		if req.System == "" {
			return errors.New(`"system" is required for use case 1`)
		}
	case 2:
		if req.Source == "" || req.Target == "" {
			return errors.New(`"source" and "target" are required for use case 2`)
		}
		if hasProbe && len(req.SourceRelTimes) < 2 {
			return errors.New(`"source_rel_times" (>= 2 values) is required with "probe_runs" for use case 2`)
		}
	}
	return nil
}

// buildResponse summarizes the predicted sample: quantiles, a density
// histogram, moments, and modality, plus the KS/W1 scores against the
// measured ground truth when the request named a database benchmark.
func buildResponse(req *PredictRequest, useCase int, p *core.Prediction) *PredictResponse {
	pred := p.Predicted
	model, _ := parseModel(req.Model)
	rep, _ := parseRep(req.Representation)
	resp := &PredictResponse{
		UseCase:        useCase,
		System:         req.System,
		Source:         req.Source,
		Target:         req.Target,
		Benchmark:      req.Benchmark,
		Model:          model.String(),
		Representation: rep.String(),
		Seed:           req.Seed,
		N:              len(pred),
		Quantiles:      quantileMap(pred),
		Histogram:      histogramJSON(pred, req.Bins),
		Moments:        momentsJSON(pred),
		Modes:          countModes(pred),
		Cache:          "miss",
	}
	if p.CacheHit {
		resp.Cache = "hit"
	}
	resp.Degraded = p.Degraded
	resp.Fallback = p.Fallback
	if p.Actual != nil {
		ks := stats.KSStatistic(pred, p.Actual)
		w1 := stats.Wasserstein1(pred, p.Actual)
		resp.KSVsMeasured = &ks
		resp.W1VsMeasured = &w1
		resp.Measured = &MeasuredJSON{
			N:       len(p.Actual),
			Moments: momentsJSON(p.Actual),
			Modes:   countModes(p.Actual),
		}
	}
	return resp
}

var quantilePoints = []struct {
	name string
	q    float64
}{
	{"p1", 0.01}, {"p5", 0.05}, {"p25", 0.25}, {"p50", 0.50},
	{"p75", 0.75}, {"p90", 0.90}, {"p95", 0.95}, {"p99", 0.99},
}

func quantileMap(xs []float64) map[string]float64 {
	qs := make([]float64, len(quantilePoints))
	for i, p := range quantilePoints {
		qs[i] = p.q
	}
	vals := stats.Quantiles(xs, qs)
	out := make(map[string]float64, len(quantilePoints))
	for i, p := range quantilePoints {
		out[p.name] = vals[i]
	}
	return out
}

func histogramJSON(xs []float64, bins int) *HistogramJSON {
	if bins <= 0 {
		bins = 50
	}
	lo, hi := stats.MinMax(xs)
	if hi <= lo {
		hi = lo + 1e-9 // degenerate sample: one zero-width spike
	}
	h := stats.HistogramFromSample(xs, lo, hi, bins)
	density := make([]float64, bins)
	for i := range density {
		density[i] = h.Density(i)
	}
	return &HistogramJSON{Lo: h.Lo, Hi: h.Hi, BinWidth: h.BinWidth(), Density: density}
}

func momentsJSON(xs []float64) MomentsJSON {
	m := stats.ComputeMoments4(xs)
	return MomentsJSON{Mean: m.Mean, Std: m.Std, Skew: m.Skew, Kurt: m.Kurt}
}

// countModes counts KDE modes the way the figures do, guarding the
// zero-variance sample KDE cannot handle.
func countModes(xs []float64) int {
	if stats.StdDev(xs) == 0 {
		return 1
	}
	return stats.NewKDE(xs).CountModes(512, 0.1)
}

// writePredictError maps predictor errors onto HTTP statuses: unknown
// IDs are 404 (the IDs are resource names), quarantined benchmarks are
// 422 (the request is well-formed; the data is unusable), an open
// breaker whose fallbacks also failed is 503 with Retry-After, a fit
// failure is 500, and config mistakes are 400.
func writePredictError(w http.ResponseWriter, err error) {
	var boe *core.BreakerOpenError
	switch {
	case errors.Is(err, core.ErrUnknownSystem), errors.Is(err, core.ErrUnknownBenchmark):
		writeError(w, http.StatusNotFound, err.Error())
	case errors.Is(err, core.ErrBenchmarkQuarantined):
		writeError(w, http.StatusUnprocessableEntity, err.Error())
	case errors.As(err, &boe):
		setRetryAfter(w, boe.RetryAfter)
		writeError(w, http.StatusServiceUnavailable, err.Error())
	case errors.Is(err, core.ErrFitFailed):
		writeError(w, http.StatusInternalServerError, err.Error())
	default:
		writeError(w, http.StatusBadRequest, err.Error())
	}
}

// setRetryAfter renders d as a Retry-After header, rounded up to whole
// seconds with a 1s floor (the header has second granularity).
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
}

// writeTimeout distinguishes a server-side deadline (504) from a client
// disconnect (499).
func writeTimeout(ctx context.Context, w http.ResponseWriter, phase string) {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("deadline exceeded while %s", phase))
		return
	}
	writeError(w, statusClientClosedRequest, fmt.Sprintf("client canceled while %s", phase))
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg, Code: status})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	// Encode into a pooled buffer first: one write to the wire, no
	// per-response encoder allocation, and a failed encode can't leave a
	// half-written body behind the already-sent status.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	err := json.NewEncoder(buf).Encode(v)
	w.Header().Set("Content-Type", "application/json")
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		_, _ = fmt.Fprintf(w, `{"error":"encode response: %v","code":500}`+"\n", jsonSafe(err.Error()))
		bufPool.Put(buf)
		return
	}
	w.WriteHeader(status)
	_, _ = w.Write(buf.Bytes())
	bufPool.Put(buf)
}

// jsonSafe strips characters that would break a hand-built JSON string.
func jsonSafe(s string) string {
	b, _ := json.Marshal(s)
	if len(b) >= 2 {
		return string(b[1 : len(b)-1])
	}
	return ""
}

// handleSystems describes the loaded database: what can be asked for
// and what the metric schema of a probe profile must look like.
func (s *Server) handleSystems(w http.ResponseWriter, _ *http.Request) {
	db := s.pred.DB()
	resp := SystemsResponse{
		RunsPerBenchmark:      db.RunsPerBenchmark,
		ProbeRunsPerBenchmark: db.ProbeRunsPerBenchmark,
	}
	for i := range db.Systems {
		sd := &db.Systems[i]
		sys := SystemJSON{Name: sd.SystemName, MetricNames: sd.MetricNames}
		for j := range sd.Benchmarks {
			sys.Benchmarks = append(sys.Benchmarks, sd.Benchmarks[j].Workload.ID())
		}
		resp.Systems = append(resp.Systems, sys)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, readyzBody("draining", 0, s.cfg.ReplicaID))
		return
	}
	// Degraded is still ready: the fallback chain answers requests. The
	// status string flips so orchestrators (and humans) can see it.
	if deg := s.pred.Degraded(); deg.BreakersOpen > 0 {
		writeJSON(w, http.StatusOK, readyzBody("degraded", deg.BreakersOpen, s.cfg.ReplicaID))
		return
	}
	writeJSON(w, http.StatusOK, readyzBody("ready", 0, s.cfg.ReplicaID))
}

// readyzBody renders the /readyz payload, carrying the shard identity
// when the server runs as a cluster replica.
func readyzBody(status string, breakersOpen int, replica string) map[string]any {
	body := map[string]any{"status": status}
	if breakersOpen > 0 {
		body["breakers_open"] = breakersOpen
	}
	if replica != "" {
		body["replica"] = replica
	}
	return body
}

// handleStatus renders the robustness posture: breaker states, the
// degraded-serving counters, and the per-system quarantine summary.
func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	deg := s.pred.Degraded()
	resp := StatusResponse{
		Status:       "ok",
		ReplicaID:    s.cfg.ReplicaID,
		BreakersOpen: deg.BreakersOpen,
		StaleServed:  deg.StaleServed,
		KNNServed:    deg.KNNServed,
	}
	if deg.BreakersOpen > 0 {
		resp.Status = "degraded"
	}
	if reg := s.pred.ModelStore(); reg != nil {
		ss := reg.Stats()
		resp.ModelStore = &ModelStoreJSON{
			Hits:        ss.Hits,
			DiskHits:    ss.DiskHits,
			Misses:      ss.Misses,
			Evictions:   ss.Evictions,
			Refreshes:   ss.Refreshes,
			LoadErrors:  ss.LoadErrors,
			SaveErrors:  ss.SaveErrors,
			Resident:    ss.Resident,
			MaxResident: ss.MaxResident,
		}
	}
	for _, b := range s.pred.Breakers() {
		resp.Breakers = append(resp.Breakers, BreakerJSON{
			Key:          b.Key,
			Open:         b.Open,
			Failures:     b.Failures,
			Trips:        b.Trips,
			RetryAfterMS: float64(b.RetryAfter) / float64(time.Millisecond),
			LastError:    b.LastErr,
		})
	}
	reports := s.pred.QuarantineReports()
	systems := make([]string, 0, len(reports))
	for sys := range reports {
		systems = append(systems, sys)
	}
	sort.Strings(systems)
	for _, sys := range systems {
		q := reports[sys]
		j := QuarantineJSON{
			System:            sys,
			RunsTotal:         q.Runs.Total,
			RunsQuarantined:   q.Runs.Quarantined,
			RunsRepaired:      q.Runs.Repaired,
			ProbesTotal:       q.Probes.Total,
			ProbesQuarantined: q.Probes.Quarantined,
		}
		for class, n := range q.Runs.ByClass {
			if j.ByClass == nil {
				j.ByClass = map[string]int{}
			}
			j.ByClass[class] += n
		}
		for class, n := range q.Probes.ByClass {
			if j.ByClass == nil {
				j.ByClass = map[string]int{}
			}
			j.ByClass[class] += n
		}
		for _, b := range q.Benchmarks {
			if b.Unusable {
				j.UnusableBenchmarks = append(j.UnusableBenchmarks, b.Benchmark)
			}
		}
		resp.Quarantine = append(resp.Quarantine, j)
	}
	if cells := s.drift.Snapshot(); len(cells) > 0 {
		d := &DriftStatusJSON{}
		now := clock()
		for i := range cells {
			c := &cells[i]
			j := DriftCellJSON{
				Cell:        c.Cell,
				State:       c.State(),
				WindowFill:  c.WindowFill,
				WindowCap:   c.WindowCap,
				BaselineN:   c.Baseline,
				Ingested:    c.Ingested,
				Accepted:    c.Accepted,
				Quarantined: c.Quarantined,
				Repaired:    c.Repaired,
				ByClass:     c.ByClass,
				Evals:       c.Evals,
				Breaches:    c.Breaches,
				Trips:       c.Trips,
				RefitOK:     c.RefitOK,
				RefitFail:   c.RefitFail,
				RefitShed:   c.RefitShed,
			}
			if c.HasEval {
				j.KS, j.W1, j.PValue = &c.KS, &c.W1, &c.PValue
			}
			if c.HasRefit {
				j.LastRefitAgeMS = float64(now.Sub(c.LastRefit)) / float64(time.Millisecond)
			}
			if c.Tripped {
				d.Drifted++
			}
			d.Cells = append(d.Cells, j)
		}
		resp.Drift = d
	}
	writeJSON(w, http.StatusOK, resp)
}
