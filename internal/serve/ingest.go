package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/perfsim"
)

// maxIngestRuns bounds one measurement batch so a single POST cannot
// flood a cell's window (and the validator) in one call; streams ship
// more data as more batches.
const maxIngestRuns = 1024

// handleMeasurements is POST /v1/measurements: validate the batch
// through the quarantine, append survivors to the cell's drift
// window, and run the drift evaluation — scheduling a background
// refit when the cell trips. The handler itself never fits anything:
// ingest latency is validation plus two ECDF passes, regardless of
// what the refit loop is doing.
func (s *Server) handleMeasurements(w http.ResponseWriter, r *http.Request) {
	start := clock()
	body, release, err := readBody(w, r)
	if err != nil {
		writeBodyError(w, err)
		return
	}
	var req MeasurementsRequest
	err = json.Unmarshal(body, &req)
	release()
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad JSON: %v", err))
		return
	}
	if req.System == "" || req.Benchmark == "" {
		writeError(w, http.StatusBadRequest, `"system" and "benchmark" are required`)
		return
	}
	if len(req.Runs) == 0 {
		writeError(w, http.StatusBadRequest, `"runs" must contain at least one run`)
		return
	}
	if len(req.Runs) > maxIngestRuns {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("batch of %d runs exceeds the limit of %d", len(req.Runs), maxIngestRuns))
		return
	}
	sd, ok := s.pred.DB().System(req.System)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown system %q", req.System))
		return
	}
	if _, ok := sd.Find(req.Benchmark); !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown benchmark %q on system %q", req.Benchmark, req.System))
		return
	}
	key := drift.Key{System: req.System, Benchmark: req.Benchmark}
	runs := s.faultBatch(key, toRuns(req.Runs))

	res, err := s.drift.Ingest(r.Context(), key, runs, len(sd.MetricNames))
	if err != nil {
		// The cell exists in the database (checked above), so this is
		// an internal inconsistency, not a caller mistake.
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	resp := &MeasurementsResponse{
		System:      req.System,
		Benchmark:   req.Benchmark,
		Accepted:    res.Report.Kept,
		Quarantined: res.Report.Quarantined,
		Repaired:    res.Report.Repaired,
		ByClass:     res.Report.ByClass,
		WindowFill:  res.WindowFill,
	}
	if res.Evaluated {
		resp.Drift = &DriftEvalJSON{
			KS:             res.KS,
			W1:             res.W1,
			PValue:         res.PValue,
			Breaches:       res.Breaches,
			Tripped:        res.Tripped,
			RefitScheduled: res.RefitScheduled,
		}
	}
	resp.ElapsedMS = float64(clock.Since(start)) / float64(time.Millisecond)
	if res.Report.Kept == 0 {
		// Fully-unusable batch: same structured body so the client sees
		// exactly what was quarantined and why, but a 422 status.
		resp.Error = "every run in the batch was quarantined"
		writeJSON(w, http.StatusUnprocessableEntity, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// faultBatch routes the decoded batch through the streaming-batch
// fault injector when one is configured (tests and drills), deriving
// the per-batch stream name from the cell and a per-cell sequence
// number so identical request sequences fault identically.
func (s *Server) faultBatch(key drift.Key, runs []perfsim.Run) []perfsim.Run {
	if s.cfg.IngestFaults == nil {
		return runs
	}
	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	seq := s.ingestSeq[key]
	s.ingestSeq[key] = seq + 1
	return s.cfg.IngestFaults.Apply(key.String()+"/batch/"+strconv.FormatUint(seq, 10), runs)
}

// driftBaseline supplies a cell's training-time distribution: the
// benchmark's measurement runs in the current database snapshot.
func (s *Server) driftBaseline(key drift.Key) ([]perfsim.Run, error) {
	sd, ok := s.pred.DB().System(key.System)
	if !ok {
		return nil, fmt.Errorf("%w %q", core.ErrUnknownSystem, key.System)
	}
	b, ok := sd.Find(key.Benchmark)
	if !ok {
		return nil, fmt.Errorf("%w %q on system %q", core.ErrUnknownBenchmark, key.Benchmark, key.System)
	}
	return b.Runs, nil
}

// refitCell is the manager's refit hook: swap the merged training set
// into the database copy-on-write, then strictly refit the system's
// resident models under their breakers. Runs on the drift manager's
// bounded background pool, never on a request goroutine; a failure
// trips the fit breaker, so requests degrade to the stale model (then
// kNN) exactly like any other fit failure, and the manager retries
// after jittered backoff.
func (s *Server) refitCell(ctx context.Context, key drift.Key, merged []perfsim.Run) error {
	if err := s.pred.SetBenchmarkRuns(key.System, key.Benchmark, merged); err != nil {
		return err
	}
	return s.pred.RefitSystem(ctx, key.System)
}
