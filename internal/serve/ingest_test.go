package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/randx"
)

// benchProbeRuns converts one benchmark's measurement runs into the
// wire shape, scaling the wall times by factor (1 = a clean replay of
// the training distribution, 2 = unambiguous drift).
func benchProbeRuns(db *measure.Database, system, benchmark string, factor float64) []ProbeRun {
	sd, _ := db.System(system)
	b, _ := sd.Find(benchmark)
	out := make([]ProbeRun, len(b.Runs))
	for i, r := range b.Runs {
		out[i] = ProbeRun{Seconds: r.Seconds * factor, Metrics: append([]float64(nil), r.Metrics...)}
	}
	return out
}

// measurementsBody marshals one ingest request.
func measurementsBody(t *testing.T, system, benchmark string, runs []ProbeRun) string {
	t.Helper()
	buf, err := json.Marshal(MeasurementsRequest{System: system, Benchmark: benchmark, Runs: runs})
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

func TestMeasurementsValidation(t *testing.T) {
	s := newTestServer(t)
	bench := firstBench(testDB)
	runs := benchProbeRuns(testDB, "intel", bench, 1)[:4]
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{"system":`, http.StatusBadRequest},
		{"missing system", measurementsBody(t, "", bench, runs), http.StatusBadRequest},
		{"missing benchmark", measurementsBody(t, "intel", "", runs), http.StatusBadRequest},
		{"empty runs", measurementsBody(t, "intel", bench, nil), http.StatusBadRequest},
		{"oversized batch", measurementsBody(t, "intel", bench, make([]ProbeRun, maxIngestRuns+1)), http.StatusBadRequest},
		{"unknown system", measurementsBody(t, "vax", bench, runs), http.StatusNotFound},
		{"unknown benchmark", measurementsBody(t, "intel", "nosuite/nobench", runs), http.StatusNotFound},
	}
	for _, tc := range cases {
		rec, resp := post(t, s, "/v1/measurements", tc.body)
		if rec.Code != tc.status {
			t.Errorf("%s: status %d (%v), want %d", tc.name, rec.Code, resp, tc.status)
		}
	}
}

func TestMeasurementsHappyPathAndQuarantine(t *testing.T) {
	s := newTestServer(t)
	bench := firstBench(testDB)
	runs := benchProbeRuns(testDB, "intel", bench, 1)[:8]
	rec, resp := post(t, s, "/v1/measurements", measurementsBody(t, "intel", bench, runs))
	if rec.Code != http.StatusOK {
		t.Fatalf("clean batch: %d %v", rec.Code, resp)
	}
	if resp["accepted"].(float64) != 8 || resp["window_fill"].(float64) != 8 {
		t.Errorf("clean batch response: %v", resp)
	}
	// A fully-defective batch is a structured 422: the client sees the
	// quarantine classes, and the window stays untouched.
	bad := []ProbeRun{{Seconds: -1, Metrics: runs[0].Metrics}, {Seconds: 1, Metrics: []float64{1}}}
	rec, resp = post(t, s, "/v1/measurements", measurementsBody(t, "intel", bench, bad))
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("fully-quarantined batch: %d %v, want 422", rec.Code, resp)
	}
	if resp["error"] == nil || resp["quarantined"].(float64) != 2 {
		t.Errorf("422 body: %v", resp)
	}
	if _, ok := resp["by_class"].(map[string]any); !ok {
		t.Errorf("422 body must carry the defect classes: %v", resp)
	}
	if resp["window_fill"].(float64) != 8 {
		t.Errorf("quarantined runs grew the window: %v", resp["window_fill"])
	}
	// The cell shows up in /v1/status with the running totals.
	_, status := get(t, s, "/v1/status")
	d, ok := status["drift"].(map[string]any)
	if !ok {
		t.Fatalf("status drift block missing: %v", status)
	}
	cells := d["cells"].([]any)
	if len(cells) != 1 {
		t.Fatalf("want 1 cell, got %v", d)
	}
	cell := cells[0].(map[string]any)
	if cell["cell"] != "intel/"+bench || cell["accepted"].(float64) != 8 || cell["quarantined"].(float64) != 2 {
		t.Errorf("status cell: %v", cell)
	}
	if cell["state"] != "filling" {
		t.Errorf("cell state = %v, want filling below MinWindow", cell["state"])
	}
}

func TestBodyCap413(t *testing.T) {
	s := newTestServer(t)
	huge := `{"pad":"` + strings.Repeat("x", maxBodyBytes) + `"}`
	for _, path := range []string{"/v1/measurements", "/v1/predict/uc1", "/v1/predict/uc2", "/v1/predict/uc1/batch"} {
		rec, resp := post(t, s, path, huge)
		if rec.Code != http.StatusRequestEntityTooLarge {
			t.Errorf("%s: status %d (%v), want 413", path, rec.Code, resp)
			continue
		}
		msg, _ := resp["error"].(string)
		if !strings.Contains(msg, "byte limit") {
			t.Errorf("%s: 413 body not structured: %v", path, resp)
		}
	}
	// A body just under the cap still parses (as a 400, not a 413: the
	// padding field is not a valid request, but it was read in full).
	almost := `{"pad":"` + strings.Repeat("x", maxBodyBytes/2) + `"}`
	if rec, _ := post(t, s, "/v1/measurements", almost); rec.Code != http.StatusBadRequest {
		t.Errorf("under-cap body: status %d, want 400", rec.Code)
	}
}

func TestIngestFaultInjectorWiring(t *testing.T) {
	inj, err := faults.NewBatch(faults.BatchConfig{Seed: 42, TruncateRate: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := New(testCampaign(t), Config{Workers: 2, RequestTimeout: time.Minute, IngestFaults: inj})
	bench := firstBench(testDB)
	runs := benchProbeRuns(testDB, "intel", bench, 1)[:10]
	rec, resp := post(t, s, "/v1/measurements", measurementsBody(t, "intel", bench, runs))
	if rec.Code != http.StatusOK {
		t.Fatalf("faulted batch: %d %v", rec.Code, resp)
	}
	if got := int(resp["accepted"].(float64)); got >= len(runs) || got < 1 {
		t.Errorf("forced truncation accepted %d of %d runs", got, len(runs))
	}
	rep := inj.Report()
	if rep.Batches != 1 || rep.Truncated != 1 {
		t.Errorf("injector report: %+v", rep)
	}
	// Same seed, fresh server: the same request sequence faults
	// identically (per-cell batch sequence numbers in the stream name).
	inj2, _ := faults.NewBatch(faults.BatchConfig{Seed: 42, TruncateRate: 1})
	s2 := New(testCampaign(t), Config{Workers: 2, RequestTimeout: time.Minute, IngestFaults: inj2})
	_, resp2 := post(t, s2, "/v1/measurements", measurementsBody(t, "intel", bench, runs))
	if resp2["accepted"].(float64) != resp["accepted"].(float64) {
		t.Errorf("replayed request faulted differently: %v vs %v", resp2["accepted"], resp["accepted"])
	}
}

// driftTestServer builds a server whose detector trips after a single
// 16-run batch per cell (MinWindow 16, hysteresis 1) on a stepped
// clock, so the whole ingest→detect→refit loop is deterministic.
func driftTestServer(t *testing.T) *Server {
	t.Helper()
	SetClock(randx.StepClock(time.Unix(1_700_000_000, 0), time.Second))
	t.Cleanup(func() { SetClock(randx.SystemClock) })
	return New(testCampaign(t), Config{
		Workers:        4,
		RequestTimeout: time.Minute,
		Drift: drift.Config{
			WindowSize: 32,
			MinWindow:  16,
			Hysteresis: 1,
			Seed:       7,
		},
	})
}

// TestDriftRefitEndToEnd is the acceptance scenario: a drifted
// measurement stream trips the detector, the breaker-guarded
// background refit completes, /v1/status reports the cells fresh, and
// the served predictions move off the stale model.
func TestDriftRefitEndToEnd(t *testing.T) {
	s := driftTestServer(t)
	target := firstBench(testDB)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":7}`, target)
	rec, before := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline predict: %d %v", rec.Code, before)
	}

	// Stream a 2x-slower distribution into every training cell of the
	// predicted benchmark, over HTTP through the StreamMeasurements
	// helper. One 16-run batch per cell is enough to evaluate and trip.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	intel, _ := testDB.System("intel")
	for i := range intel.Benchmarks {
		cell := intel.Benchmarks[i].Workload.ID()
		if cell == target {
			continue
		}
		res, err := StreamMeasurements(context.Background(), StreamOptions{
			URL:       ts.URL,
			System:    "intel",
			Benchmark: cell,
			Runs:      benchProbeRuns(testDB, "intel", cell, 2)[:16],
			BatchSize: 16,
		})
		if err != nil {
			t.Fatalf("stream %s: %v", cell, err)
		}
		if res.TrippedBatch != 1 || res.RefitBatch != 1 {
			t.Fatalf("cell %s: tripped batch %d, refit batch %d, want 1/1 (%s)",
				cell, res.TrippedBatch, res.RefitBatch, res)
		}
	}
	s.Drift().Wait()

	// Every cell is fresh again and the refit counters moved.
	_, status := get(t, s, "/v1/status")
	d := status["drift"].(map[string]any)
	if d["drifted"].(float64) != 0 {
		t.Fatalf("cells still drifted after Wait: %v", d)
	}
	for _, cv := range d["cells"].([]any) {
		cell := cv.(map[string]any)
		if cell["state"] != "fresh" || cell["refit_ok"].(float64) < 1 {
			t.Errorf("cell not refreshed: %v", cell)
		}
		if cell["last_refit_age_ms"] == nil {
			t.Errorf("staleness gauge missing: %v", cell)
		}
	}

	// The merged (bimodal) training data changed the served model: the
	// post-refit prediction differs and hits the refitted cache entry.
	rec, after := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-refit predict: %d %v", rec.Code, after)
	}
	if after["cache"] != "hit" {
		t.Errorf("post-refit predict cache = %v, want hit (eager refit)", after["cache"])
	}
	if after["degraded"] == true {
		t.Errorf("successful refit must not serve degraded: %v", after)
	}
	if reflect.DeepEqual(before["quantiles"], after["quantiles"]) {
		t.Error("prediction unchanged although every training cell drifted")
	}

	// The metrics surfaces carry the drift gauges.
	_, metrics := get(t, s, "/metrics")
	md, ok := metrics["drift"].(map[string]any)
	if !ok || md["refit_ok"].(float64) < 1 || md["drifted"].(float64) != 0 {
		t.Errorf("metrics drift block: %v", metrics["drift"])
	}
	rec, _ = get(t, s, "/v1/metrics")
	if !strings.Contains(rec.Body.String(), "drift.ks.") || !strings.Contains(rec.Body.String(), "drift.last_refit_age_ms.") {
		t.Error("obs registry missing per-cell drift gauges")
	}
	// The background refits left traces rooted at refit.fit.
	if !strings.Contains(strings.Join(renderedTraces(s), "\n"), "refit.fit") {
		t.Error("no refit.fit trace recorded")
	}
}

func renderedTraces(s *Server) []string {
	var out []string
	for _, root := range s.Tracer().Traces() {
		out = append(out, root.Render())
	}
	return out
}

// TestNoDriftNoRefit is the control arm: a clean replay of the
// training distribution fills windows and evaluates but never trips,
// schedules, or refits anything.
func TestNoDriftNoRefit(t *testing.T) {
	s := driftTestServer(t)
	bench := firstBench(testDB)
	runs := benchProbeRuns(testDB, "intel", bench, 1) // the training runs themselves
	for batch := 0; batch < 4; batch++ {
		rec, resp := post(t, s, "/v1/measurements",
			measurementsBody(t, "intel", bench, runs[batch*16:(batch+1)*16]))
		if rec.Code != http.StatusOK {
			t.Fatalf("batch %d: %d %v", batch, rec.Code, resp)
		}
		if dr, ok := resp["drift"].(map[string]any); ok && dr["tripped"] == true {
			t.Fatalf("clean replay tripped the detector: %v", resp)
		}
	}
	s.Drift().Wait()
	_, status := get(t, s, "/v1/status")
	d := status["drift"].(map[string]any)
	cell := d["cells"].([]any)[0].(map[string]any)
	if cell["state"] != "fresh" || cell["trips"].(float64) != 0 {
		t.Errorf("clean cell: %v", cell)
	}
	if cell["refit_ok"].(float64)+cell["refit_fail"].(float64)+cell["refit_shed"].(float64) != 0 {
		t.Errorf("refit activity without drift: %v", cell)
	}
}

// TestFailingRefitDegradesNever500s drives the drift loop into a fit
// outage: the refit fails in the background, the cell stays drifted
// with backoff booked, and serving falls back to the stale model —
// flagged degraded, never a 500.
func TestFailingRefitDegradesNever500s(t *testing.T) {
	s := driftTestServer(t)
	target := firstBench(testDB)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":7}`, target)
	rec, before := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("baseline predict: %d %v", rec.Code, before)
	}
	s.Predictor().SetFitHook(func(info core.FitInfo) error {
		if info.Fallback {
			return nil
		}
		return errors.New("drill: refit outage")
	})
	intel, _ := testDB.System("intel")
	cell := intel.Benchmarks[1].Workload.ID()
	rec, resp := post(t, s, "/v1/measurements",
		measurementsBody(t, "intel", cell, benchProbeRuns(testDB, "intel", cell, 2)[:16]))
	if rec.Code != http.StatusOK {
		t.Fatalf("drifted batch: %d %v", rec.Code, resp)
	}
	s.Drift().Wait()

	_, status := get(t, s, "/v1/status")
	d := status["drift"].(map[string]any)
	var st map[string]any
	for _, cv := range d["cells"].([]any) {
		if c := cv.(map[string]any); c["cell"] == "intel/"+cell {
			st = c
		}
	}
	if st == nil || st["state"] != "drifted" || st["refit_fail"].(float64) < 1 {
		t.Fatalf("failed refit cell: %v", st)
	}
	// Serving survives on the stale model, visibly degraded.
	rec, after := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded predict: %d %v — the drift loop must never 500 serving", rec.Code, after)
	}
	if after["degraded"] != true || after["fallback"] != "stale" {
		t.Errorf("want stale fallback, got degraded=%v fallback=%v", after["degraded"], after["fallback"])
	}
	if !reflect.DeepEqual(before["quantiles"], after["quantiles"]) {
		t.Error("stale fallback must reproduce the pre-drift prediction")
	}
}
