package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/randx"
)

// LoadgenOptions parameterizes a load-generation run against a live
// varserve instance.
type LoadgenOptions struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// UseCase selects the endpoint (1 or 2; default 1).
	UseCase int
	// Concurrency is the number of client workers (default 8).
	Concurrency int
	// Requests is the total request count (default 200).
	Requests int
	// Benchmarks rotates the request targets; fetched from /v1/systems
	// when empty. Each distinct benchmark is a distinct model-cache key,
	// so the first request per benchmark measures the cold (train) path
	// and the rest measure the warm (predict-only) path.
	Benchmarks []string
	// System / Source / Target name the systems (defaults: the first
	// database system for UC1; first → second for UC2).
	System, Source, Target string
	// Model and Representation are passed through to the request body.
	Model, Representation string
	// Samples is the UC1 profile size (default 10).
	Samples int
	// Seed is passed through to the request body (default 1).
	Seed uint64
	// Timeout bounds each HTTP request (default 2m, generous because
	// cold requests include model training).
	Timeout time.Duration
	// MaxRetries bounds per-request retries after a 503 (the server
	// shedding load or a breaker being open). Default 3; negative
	// disables retrying. Retries honor the server's Retry-After header,
	// falling back to capped exponential backoff, always with jitter so
	// synchronized clients do not re-stampede the server.
	MaxRetries int
}

func (o LoadgenOptions) withDefaults() LoadgenOptions {
	if o.UseCase == 0 {
		o.UseCase = 1
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 8
	}
	if o.Requests <= 0 {
		o.Requests = 200
	}
	if o.Samples <= 0 {
		o.Samples = 10
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.MaxRetries == 0 {
		o.MaxRetries = 3
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	}
	return o
}

// LoadgenResult is the aggregate outcome of a load run.
type LoadgenResult struct {
	Requests int           `json:"requests"`
	Errors   int           `json:"errors"`
	Duration time.Duration `json:"duration"`
	RPS      float64       `json:"rps"`
	// Cold aggregates cache-miss requests (model trained in-request),
	// Warm aggregates cache-hit requests (predict-only).
	Cold LatencySummary `json:"cold"`
	Warm LatencySummary `json:"warm"`
}

// Speedup is the cold-mean over warm-p50 latency ratio — the headline
// number of the trained-model cache.
func (r *LoadgenResult) Speedup() float64 {
	if r.Warm.P50MS <= 0 {
		return 0
	}
	return r.Cold.MeanMS / r.Warm.P50MS
}

// String renders the report the way cmd/varserve prints it.
func (r *LoadgenResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadgen: %d requests (%d errors) in %v -> %.1f req/s\n",
		r.Requests, r.Errors, r.Duration.Round(time.Millisecond), r.RPS)
	fmt.Fprintf(&b, "  cold (cache miss, trains the model): n=%d mean=%.1fms p50=%.1fms p99=%.1fms max=%.1fms\n",
		r.Cold.Count, r.Cold.MeanMS, r.Cold.P50MS, r.Cold.P99MS, r.Cold.MaxMS)
	fmt.Fprintf(&b, "  warm (cache hit, predict only):      n=%d mean=%.3fms p50=%.3fms p99=%.3fms max=%.1fms\n",
		r.Warm.Count, r.Warm.MeanMS, r.Warm.P50MS, r.Warm.P99MS, r.Warm.MaxMS)
	if s := r.Speedup(); s > 0 {
		fmt.Fprintf(&b, "  speedup (cold mean / warm p50): %.0fx", s)
	}
	return b.String()
}

// Loadgen hammers a varserve instance and measures throughput and the
// cold-versus-warm latency split (each response self-reports whether it
// hit the trained-model cache).
func Loadgen(ctx context.Context, opts LoadgenOptions) (*LoadgenResult, error) {
	opts = opts.withDefaults()
	client := &http.Client{Timeout: opts.Timeout}
	if err := loadgenDiscover(ctx, client, &opts); err != nil {
		return nil, err
	}
	endpoint := fmt.Sprintf("%s/v1/predict/uc%d", strings.TrimRight(opts.URL, "/"), opts.UseCase)

	// Latency tracking rides the same obs histograms the server itself
	// uses for /v1/metrics, so self-benchmarking and serving share one
	// measurement path (counts and means exact, percentiles from the
	// log-space bins).
	var (
		mu   sync.Mutex
		errs int
	)
	cold := obs.NewLatencyHist()
	warm := obs.NewLatencyHist()
	start := clock()
	// A canceled context just ends the run early; the partial counts are
	// still the report, so the pool's ctx.Err() is deliberately dropped.
	_ = parallel.ForEach(ctx, opts.Requests, opts.Concurrency, func(ctx context.Context, i int) error {
		bench := opts.Benchmarks[i%len(opts.Benchmarks)]
		hit, ms, err := loadgenOnce(ctx, client, endpoint, &opts, bench)
		switch {
		case err != nil:
			mu.Lock()
			errs++
			mu.Unlock()
		case hit:
			warm.ObserveMS(ms)
		default:
			cold.ObserveMS(ms)
		}
		return nil
	})
	dur := clock.Since(start)
	res := &LoadgenResult{
		Requests: opts.Requests,
		Errors:   errs,
		Duration: dur,
		RPS:      float64(opts.Requests-errs) / dur.Seconds(),
		Cold:     summaryFromHist(cold.Snapshot()),
		Warm:     summaryFromHist(warm.Snapshot()),
	}
	return res, nil
}

// loadgenDiscover fills in system and benchmark defaults from the
// server's /v1/systems description.
func loadgenDiscover(ctx context.Context, client *http.Client, opts *LoadgenOptions) error {
	if len(opts.Benchmarks) > 0 && opts.System != "" && (opts.UseCase == 1 || opts.Source != "") {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(opts.URL, "/")+"/v1/systems", nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: discover: %w", err)
	}
	defer resp.Body.Close()
	var sys SystemsResponse
	if err := json.NewDecoder(resp.Body).Decode(&sys); err != nil {
		return fmt.Errorf("loadgen: decode /v1/systems: %w", err)
	}
	if len(sys.Systems) == 0 {
		return fmt.Errorf("loadgen: server has no systems")
	}
	if opts.System == "" {
		opts.System = sys.Systems[0].Name
	}
	if opts.Source == "" {
		opts.Source = sys.Systems[0].Name
	}
	if opts.Target == "" {
		if len(sys.Systems) > 1 {
			opts.Target = sys.Systems[1].Name
		} else {
			opts.Target = sys.Systems[0].Name
		}
	}
	if len(opts.Benchmarks) == 0 {
		opts.Benchmarks = sys.Systems[0].Benchmarks
	}
	if len(opts.Benchmarks) == 0 {
		return fmt.Errorf("loadgen: no benchmarks to request")
	}
	return nil
}

// loadgenBackoff bounds the client-side retry backoff.
const (
	loadgenBaseBackoff = 100 * time.Millisecond
	loadgenMaxBackoff  = 5 * time.Second
)

// jitterSrc drives the retry jitter. The fixed seed is fine — jitter
// exists to decorrelate concurrent clients within one run, not to be
// unpredictable across runs — and keeps the load generator free of the
// global math/rand stream like everything else in the repository.
var jitterSrc = struct {
	mu sync.Mutex
	r  *randx.RNG
}{r: randx.New(0x6c6f6164)}

// retryDelay computes the wait before retry attempt (0-based), honoring
// the server's Retry-After header when present, otherwise doubling from
// the base with a cap, and always adding up to 50% jitter.
func retryDelay(retryAfter string, attempt int) time.Duration {
	delay := loadgenBaseBackoff << uint(attempt)
	if secs, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && secs > 0 {
		delay = time.Duration(secs) * time.Second
	}
	if delay > loadgenMaxBackoff {
		delay = loadgenMaxBackoff
	}
	jitterSrc.mu.Lock()
	defer jitterSrc.mu.Unlock()
	return delay + time.Duration(jitterSrc.r.IntN(int(delay)/2+1))
}

// loadgenOnce issues one prediction request — retrying 503s (shed load
// or open breakers) with Retry-After-aware capped backoff — and reports
// whether the server answered from the model cache and how long the
// successful attempt took.
func loadgenOnce(ctx context.Context, client *http.Client, endpoint string, opts *LoadgenOptions, bench string) (hit bool, ms float64, err error) {
	body := PredictRequest{
		Benchmark:      bench,
		Model:          opts.Model,
		Representation: opts.Representation,
		Samples:        opts.Samples,
		Seed:           opts.Seed,
	}
	if opts.UseCase == 1 {
		body.System = opts.System
	} else {
		body.Source, body.Target = opts.Source, opts.Target
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return false, 0, err
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(buf))
		if err != nil {
			return false, 0, err
		}
		req.Header.Set("Content-Type", "application/json")
		start := clock()
		resp, err := client.Do(req)
		if err != nil {
			return false, 0, err
		}
		elapsed := float64(clock.Since(start)) / float64(time.Millisecond)
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < opts.MaxRetries {
			retryAfter := resp.Header.Get("Retry-After")
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			select {
			case <-time.After(retryDelay(retryAfter, attempt)):
				continue
			case <-ctx.Done():
				return false, elapsed, ctx.Err()
			}
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			resp.Body.Close()
			return false, elapsed, fmt.Errorf("loadgen: %s: %s", resp.Status, msg)
		}
		var pr PredictResponse
		decErr := json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if decErr != nil {
			return false, elapsed, decErr
		}
		return pr.Cache == "hit", elapsed, nil
	}
}
