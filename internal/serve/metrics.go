package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
)

// latencyCap bounds the per-endpoint latency reservoir; percentiles are
// computed over the most recent latencyCap observations.
const latencyCap = 8192

// Metrics aggregates the server's observability state. The counters are
// expvar types, but the set is owned by the server instance rather than
// published to the global expvar registry, so multiple servers (tests,
// loadgen self-hosting) never collide on variable names; /metrics
// renders a JSON snapshot of everything.
type Metrics struct {
	start    time.Time
	requests *expvar.Map // by "METHOD /path"
	statuses *expvar.Map // by status code
	inFlight expvar.Int
	// saturated counts requests that found the worker pool full on
	// arrival (whether they eventually got a slot or were shed).
	saturated expvar.Int

	mu  sync.Mutex
	lat map[string]*latencyReservoir
}

type latencyReservoir struct {
	count   int64
	sumMS   float64
	samples []float64 // ring buffer of recent latencies in ms
	next    int
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:    clock(),
		requests: new(expvar.Map).Init(),
		statuses: new(expvar.Map).Init(),
		lat:      make(map[string]*latencyReservoir),
	}
	return m
}

// Observe records one completed request.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	m.requests.Add(endpoint, 1)
	m.statuses.Add(http.StatusText(status), 1)
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.lat[endpoint]
	if r == nil {
		r = &latencyReservoir{}
		m.lat[endpoint] = r
	}
	r.count++
	r.sumMS += ms
	if len(r.samples) < latencyCap {
		r.samples = append(r.samples, ms)
	} else {
		r.samples[r.next] = ms
		r.next = (r.next + 1) % latencyCap
	}
}

// LatencySummary reports count, mean, and percentiles in milliseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func summarizeMS(count int64, sum float64, samples []float64) LatencySummary {
	s := LatencySummary{Count: count}
	if count == 0 || len(samples) == 0 {
		return s
	}
	s.MeanMS = sum / float64(count)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	pick := func(q float64) float64 {
		i := int(q * float64(len(sorted)-1))
		return sorted[i]
	}
	s.P50MS = pick(0.50)
	s.P90MS = pick(0.90)
	s.P99MS = pick(0.99)
	s.MaxMS = sorted[len(sorted)-1]
	return s
}

// snapshot renders the metrics as one JSON-encodable value.
func (m *Metrics) snapshot(pred *core.Predictor, inFlight int64) map[string]any {
	counts := func(ev *expvar.Map) map[string]int64 {
		out := map[string]int64{}
		ev.Do(func(kv expvar.KeyValue) {
			if v, ok := kv.Value.(*expvar.Int); ok {
				out[kv.Key] = v.Value()
			}
		})
		return out
	}
	lat := map[string]LatencySummary{}
	func() {
		m.mu.Lock()
		defer m.mu.Unlock()
		for ep, r := range m.lat {
			lat[ep] = summarizeMS(r.count, r.sumMS, r.samples)
		}
	}()
	cs := pred.CacheStats()
	deg := pred.Degraded()
	return map[string]any{
		"uptime_seconds": clock.Since(m.start).Seconds(),
		"in_flight":      inFlight,
		"goroutines":     runtime.NumGoroutine(),
		"requests":       counts(m.requests),
		"statuses":       counts(m.statuses),
		"saturated":      m.saturated.Value(),
		"cache": map[string]uint64{
			"hits":   cs.Hits,
			"misses": cs.Misses,
		},
		"degraded": map[string]any{
			"stale_served":  deg.StaleServed,
			"knn_served":    deg.KNNServed,
			"breakers_open": deg.BreakersOpen,
		},
		"latency": lat,
	}
}

// handleMetrics serves the JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.metrics.snapshot(s.pred, s.metrics.inFlight.Value()))
}
