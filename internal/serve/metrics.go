package serve

import (
	"encoding/json"
	"expvar"
	"net/http"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/obs"
)

// Metrics aggregates the server's observability state. Request counts
// stay on expvar types for continuity with PR 1, but all latency
// tracking lives in an obs.Registry of fixed-bin log-space histograms —
// the same machinery the paper uses for performance distributions,
// pointed at the server itself. The set is owned by the server instance
// rather than published to the global expvar registry, so multiple
// servers (tests, loadgen self-hosting) never collide on variable
// names; /metrics renders a JSON snapshot of everything and
// /v1/metrics the raw registry.
type Metrics struct {
	start    time.Time
	requests *expvar.Map // by "METHOD /path"
	statuses *expvar.Map // by status code
	inFlight expvar.Int
	// saturated counts requests that found the worker pool full on
	// arrival (whether they eventually got a slot or were shed).
	saturated expvar.Int

	reg *obs.Registry
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics {
	m := &Metrics{
		start:    clock(),
		requests: new(expvar.Map).Init(),
		statuses: new(expvar.Map).Init(),
		reg:      obs.NewRegistry(),
	}
	return m
}

// Registry exposes the underlying obs metrics registry (served raw by
// GET /v1/metrics, publishable via expvar by the binary).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// Observe records one completed request: the per-route expvar count,
// the status count, the per-route obs latency histogram, and the
// 4xx/5xx class counters.
func (m *Metrics) Observe(endpoint string, status int, d time.Duration) {
	m.requests.Add(endpoint, 1)
	m.statuses.Add(http.StatusText(status), 1)
	m.reg.Histogram("http.latency." + endpoint).Observe(d)
	switch {
	case status >= 500:
		m.reg.Counter("http.status.5xx").Inc()
	case status >= 400:
		m.reg.Counter("http.status.4xx").Inc()
	default:
		m.reg.Counter("http.status.2xx").Inc()
	}
}

// LatencySummary reports count, mean, and percentiles in milliseconds.
// Count, Mean, and Max are exact; the percentiles are interpolated from
// the obs histogram's log-space bins (a few percent relative error).
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// summaryFromHist converts an obs histogram snapshot into the /metrics
// latency summary shape (kept stable since PR 1).
func summaryFromHist(h obs.HistSnapshot) LatencySummary {
	return LatencySummary{
		Count:  h.Count,
		MeanMS: h.MeanMS,
		P50MS:  h.P50MS,
		P90MS:  h.P90MS,
		P99MS:  h.P99MS,
		MaxMS:  h.MaxMS,
	}
}

// latencyPrefix is the registry-name prefix of per-route histograms.
const latencyPrefix = "http.latency."

// snapshot renders the metrics as one JSON-encodable value. cells is
// the drift manager's per-cell state (nil when no cell exists yet).
func (m *Metrics) snapshot(pred *core.Predictor, cells []drift.CellStatus, inFlight int64) map[string]any {
	counts := func(ev *expvar.Map) map[string]int64 {
		out := map[string]int64{}
		ev.Do(func(kv expvar.KeyValue) {
			if v, ok := kv.Value.(*expvar.Int); ok {
				out[kv.Key] = v.Value()
			}
		})
		return out
	}
	lat := map[string]LatencySummary{}
	for name, h := range m.reg.Snapshot().Histograms {
		if len(name) > len(latencyPrefix) && name[:len(latencyPrefix)] == latencyPrefix {
			lat[name[len(latencyPrefix):]] = summaryFromHist(h)
		}
	}
	cs := pred.CacheStats()
	deg := pred.Degraded()
	out := map[string]any{
		"uptime_seconds": clock.Since(m.start).Seconds(),
		"in_flight":      inFlight,
		"goroutines":     runtime.NumGoroutine(),
		"requests":       counts(m.requests),
		"statuses":       counts(m.statuses),
		"saturated":      m.saturated.Value(),
		"cache": map[string]uint64{
			"hits":   cs.Hits,
			"misses": cs.Misses,
		},
		"degraded": map[string]any{
			"stale_served":  deg.StaleServed,
			"knn_served":    deg.KNNServed,
			"breakers_open": deg.BreakersOpen,
		},
		"latency": lat,
	}
	if reg := pred.ModelStore(); reg != nil {
		ss := reg.Stats()
		out["model_store"] = map[string]any{
			"hits":        ss.Hits,
			"disk_hits":   ss.DiskHits,
			"misses":      ss.Misses,
			"evictions":   ss.Evictions,
			"refreshes":   ss.Refreshes,
			"load_errors": ss.LoadErrors,
			"save_errors": ss.SaveErrors,
			"resident":    ss.Resident,
		}
	}
	if len(cells) > 0 {
		drifted, refitOK, refitFail, refitShed := 0, 0, 0, 0
		perCell := map[string]any{}
		now := clock()
		for i := range cells {
			c := &cells[i]
			if c.Tripped {
				drifted++
			}
			refitOK += c.RefitOK
			refitFail += c.RefitFail
			refitShed += c.RefitShed
			cellOut := map[string]any{
				"state":       c.State(),
				"ks":          c.KS,
				"w1":          c.W1,
				"window_fill": c.WindowFill,
				"accepted":    c.Accepted,
				"quarantined": c.Quarantined,
			}
			if c.HasRefit {
				cellOut["last_refit_age_ms"] = float64(now.Sub(c.LastRefit)) / float64(time.Millisecond)
			}
			perCell[c.Cell] = cellOut
		}
		out["drift"] = map[string]any{
			"cells":      len(cells),
			"drifted":    drifted,
			"refit_ok":   refitOK,
			"refit_fail": refitFail,
			"refit_shed": refitShed,
			"by_cell":    perCell,
		}
	}
	return out
}

// handleMetrics serves the JSON snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.metrics.snapshot(s.pred, s.drift.Snapshot(), s.metrics.inFlight.Value()))
}

// handleObsMetrics serves the raw obs registry: every counter, gauge,
// and latency histogram snapshot (per-route p50/p90/p95/p99), plus
// predictor cache counters mirrored in so one endpoint answers "how is
// the service behaving".
func (s *Server) handleObsMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := s.pred.CacheStats()
	s.metrics.reg.Counter("predictor.cache.hits").Add(int64(cs.Hits) - s.metrics.reg.Counter("predictor.cache.hits").Value())
	s.metrics.reg.Counter("predictor.cache.misses").Add(int64(cs.Misses) - s.metrics.reg.Counter("predictor.cache.misses").Value())
	if reg := s.pred.ModelStore(); reg != nil {
		ss := reg.Stats()
		s.metrics.reg.Gauge("modelstore.hits").Set(float64(ss.Hits))
		s.metrics.reg.Gauge("modelstore.disk_hits").Set(float64(ss.DiskHits))
		s.metrics.reg.Gauge("modelstore.misses").Set(float64(ss.Misses))
		s.metrics.reg.Gauge("modelstore.evictions").Set(float64(ss.Evictions))
		s.metrics.reg.Gauge("modelstore.resident").Set(float64(ss.Resident))
	}
	// Staleness/drift gauges, mirrored per cell at scrape time like the
	// model-store gauges above (Set is idempotent, so scrapes race-free).
	if cells := s.drift.Snapshot(); len(cells) > 0 {
		now := clock()
		drifted := 0
		for i := range cells {
			c := &cells[i]
			if c.Tripped {
				drifted++
			}
			s.metrics.reg.Gauge("drift.ks." + c.Cell).Set(c.KS)
			s.metrics.reg.Gauge("drift.w1." + c.Cell).Set(c.W1)
			s.metrics.reg.Gauge("drift.window_fill." + c.Cell).Set(float64(c.WindowFill))
			s.metrics.reg.Gauge("drift.accepted." + c.Cell).Set(float64(c.Accepted))
			s.metrics.reg.Gauge("drift.quarantined." + c.Cell).Set(float64(c.Quarantined))
			s.metrics.reg.Gauge("drift.refit_ok." + c.Cell).Set(float64(c.RefitOK))
			s.metrics.reg.Gauge("drift.refit_fail." + c.Cell).Set(float64(c.RefitFail))
			s.metrics.reg.Gauge("drift.refit_shed." + c.Cell).Set(float64(c.RefitShed))
			age := -1.0 // "never refitted" sentinel
			if c.HasRefit {
				age = float64(now.Sub(c.LastRefit)) / float64(time.Millisecond)
			}
			s.metrics.reg.Gauge("drift.last_refit_age_ms." + c.Cell).Set(age)
		}
		s.metrics.reg.Gauge("drift.cells").Set(float64(len(cells)))
		s.metrics.reg.Gauge("drift.drifted").Set(float64(drifted))
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.metrics.reg.Snapshot())
}

// handleTraces serves the tracer's ring buffer of completed traces,
// oldest first, rendered as indented text trees.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	total, slow := s.tracer.Completed()
	resp := TracesResponse{Completed: total, Slow: slow}
	for _, root := range s.tracer.Traces() {
		resp.Traces = append(resp.Traces, root.Render())
	}
	writeJSON(w, http.StatusOK, resp)
}
