package serve

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/modelstore"
)

// newStoreServer builds a server over a shared model-store directory,
// simulating one process lifetime with -modeldir.
func newStoreServer(t *testing.T, dir string) *Server {
	t.Helper()
	store, err := modelstore.Open(dir)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return New(testCampaign(t), Config{
		Workers:        4,
		RequestTimeout: time.Minute,
		ModelRegistry:  modelstore.NewRegistry(store, 8),
	})
}

// TestWarmStartAcrossRestart is the serve-level warm-start contract:
// a first server fits and persists, a "restarted" server over the same
// directory answers the same request from disk — no fit on the hot
// path, proven by a FitHook that fails the test — with a bit-identical
// response body.
func TestWarmStartAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	db := testCampaign(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"model":"rf","samples":5,"seed":3}`, firstBench(db))

	cold := newStoreServer(t, dir)
	rec, coldResp := post(t, cold, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("cold predict: %d: %s", rec.Code, rec.Body.String())
	}
	if ss := cold.pred.ModelStore().Stats(); ss.Misses != 1 || ss.SaveErrors != 0 {
		t.Fatalf("cold stats: %+v, want 1 miss, 0 save errors", ss)
	}

	warm := newStoreServer(t, dir)
	warm.pred.SetFitHook(func(info core.FitInfo) error {
		t.Errorf("restarted server fitted %v despite a warm store", info)
		return nil
	})
	rec2, warmResp := post(t, warm, "/v1/predict/uc1", body)
	if rec2.Code != http.StatusOK {
		t.Fatalf("warm predict: %d: %s", rec2.Code, rec2.Body.String())
	}
	if ss := warm.pred.ModelStore().Stats(); ss.DiskHits != 1 || ss.Misses != 0 {
		t.Fatalf("warm stats: %+v, want 1 disk hit, 0 misses", ss)
	}
	// The distribution payload must be bit-identical; elapsed_ms is the
	// one legitimately volatile field.
	for _, field := range []string{"quantiles", "histogram", "moments", "modes", "ks_vs_measured", "w1_vs_measured"} {
		if !reflect.DeepEqual(coldResp[field], warmResp[field]) {
			t.Errorf("warm-start %s differs from the fitting server's:\ncold: %v\nwarm: %v",
				field, coldResp[field], warmResp[field])
		}
	}
}

// TestStatusReportsModelStore checks the /v1/status wiring: the
// model_store block appears exactly when a registry is configured.
func TestStatusReportsModelStore(t *testing.T) {
	s := newStoreServer(t, t.TempDir())
	db := testCampaign(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"model":"rf","samples":5}`, firstBench(db))
	if rec, _ := post(t, s, "/v1/predict/uc1", body); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d", rec.Code)
	}
	rec, decoded := get(t, s, "/v1/status")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
	ms, ok := decoded["model_store"].(map[string]any)
	if !ok {
		t.Fatalf("status lacks model_store: %v", decoded)
	}
	if ms["misses"].(float64) != 1 {
		t.Fatalf("model_store misses = %v, want 1", ms["misses"])
	}

	plain := newTestServer(t)
	if _, decoded := get(t, plain, "/v1/status"); decoded["model_store"] != nil {
		t.Fatal("storeless server reports a model_store block")
	}
}
