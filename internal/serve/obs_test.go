package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/randx"
)

// getRec sends a GET to the handler and returns the recorder.
func getRec(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	return rec
}

// spanNames flattens a trace tree into depth-first span names.
func spanNames(s *obs.Span) []string {
	names := []string{s.Name()}
	for _, c := range s.Children() {
		names = append(names, spanNames(c)...)
	}
	return names
}

func contains(names []string, want string) bool {
	for _, n := range names {
		if n == want {
			return true
		}
	}
	return false
}

// TestEveryPredictRequestTraced is the acceptance check for the
// tracing layer: each /v1/predict/* request must commit a trace of at
// least three spans (route -> predictor -> model), on both the miss
// (fit) and the hit (decode-only) path.
func TestEveryPredictRequestTraced(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":3}`, firstBench(testDB))

	// Miss: fit + decode.
	if rec, resp := post(t, s, "/v1/predict/uc1", body); rec.Code != http.StatusOK {
		t.Fatalf("miss status %d: %v", rec.Code, resp)
	}
	// Hit: decode only.
	if rec, resp := post(t, s, "/v1/predict/uc1", body); rec.Code != http.StatusOK {
		t.Fatalf("hit status %d: %v", rec.Code, resp)
	}

	traces := s.Tracer().Traces()
	if len(traces) != 2 {
		t.Fatalf("want 2 committed traces, got %d", len(traces))
	}
	for i, root := range traces {
		names := spanNames(root)
		if root.Name() != "POST /v1/predict/uc1" {
			t.Errorf("trace %d root = %q", i, root.Name())
		}
		if root.SpanCount() < 3 {
			t.Errorf("trace %d has %d spans, want >= 3:\n%s", i, root.SpanCount(), root.Render())
		}
		if !contains(names, "predictor.uc1") {
			t.Errorf("trace %d lacks predictor.uc1:\n%s", i, root.Render())
		}
		if !contains(names, "model.predict") {
			t.Errorf("trace %d lacks model.predict:\n%s", i, root.Render())
		}
		if root.Attr("status") != "200" {
			t.Errorf("trace %d status attr = %q, want 200", i, root.Attr("status"))
		}
	}
	// The miss trace must show the fit; the hit trace must say so.
	if !contains(spanNames(traces[0]), "model.fit") {
		t.Errorf("miss trace lacks model.fit:\n%s", traces[0].Render())
	}
	missAttrs, hitAttrs := findAttr(traces[0], "cache_hit"), findAttr(traces[1], "cache_hit")
	if missAttrs != "false" || hitAttrs != "true" {
		t.Errorf("cache_hit attrs = %q/%q, want false/true", missAttrs, hitAttrs)
	}
}

// findAttr searches the whole trace tree for the first span carrying
// the key and returns its value.
func findAttr(s *obs.Span, key string) string {
	if v := s.Attr(key); v != "" {
		return v
	}
	for _, c := range s.Children() {
		if v := findAttr(c, key); v != "" {
			return v
		}
	}
	return ""
}

func TestUC2AndBatchRequestsTraced(t *testing.T) {
	s := newTestServer(t)
	uc2 := fmt.Sprintf(`{"source":"amd","target":"intel","benchmark":%q,"seed":3}`, firstBench(testDB))
	if rec, resp := post(t, s, "/v1/predict/uc2", uc2); rec.Code != http.StatusOK {
		t.Fatalf("uc2 status %d: %v", rec.Code, resp)
	}
	traces := s.Tracer().Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	names := spanNames(traces[0])
	if traces[0].SpanCount() < 3 || !contains(names, "predictor.uc2") {
		t.Errorf("uc2 trace too shallow:\n%s", traces[0].Render())
	}
}

// TestTraceTimingsDeterministicClock pins the tracer to a step clock
// and asserts the recorded durations are exactly the synthetic ones —
// the obs layer never reads the wall clock behind randx's back.
func TestTraceTimingsDeterministicClock(t *testing.T) {
	SetClock(randx.StepClock(time.Unix(1700000000, 0), 10*time.Millisecond))
	defer SetClock(randx.SystemClock)
	s := newTestServer(t)
	rec := getRec(t, s, "/v1/systems")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	traces := s.Tracer().Traces()
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	root := traces[0]
	// /v1/systems has no child spans: root takes readings 1 (start) and
	// 2 (end) of the step clock after Observe's own start reading, so
	// the duration is an exact multiple of the step.
	if d := root.Duration(); d <= 0 || d%(10*time.Millisecond) != 0 {
		t.Errorf("duration %v is not a whole number of 10ms steps", d)
	}
}

// TestObsMetricsEndpoint is the acceptance check for GET /v1/metrics:
// per-route latency histograms with p50/p95/p99, status-class
// counters, and the mirrored predictor cache counters.
func TestObsMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":5}`, firstBench(testDB))
	post(t, s, "/v1/predict/uc1", body)
	post(t, s, "/v1/predict/uc1", body)
	post(t, s, "/v1/predict/uc1", `{"system":"intel"}`) // 400

	rec := getRec(t, s, "/v1/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var snap obs.RegistrySnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("GET /v1/metrics is not a registry snapshot: %v", err)
	}
	h, ok := snap.Histograms["http.latency.POST /v1/predict/uc1"]
	if !ok {
		t.Fatalf("no per-route histogram; histograms = %v", snap.Histograms)
	}
	if h.Count != 3 {
		t.Errorf("route count = %d, want 3", h.Count)
	}
	if !(h.P50MS > 0) || !(h.P95MS >= h.P50MS) || !(h.P99MS >= h.P95MS) {
		t.Errorf("quantiles not ordered/positive: p50=%v p95=%v p99=%v", h.P50MS, h.P95MS, h.P99MS)
	}
	if h.MaxMS < h.P99MS {
		t.Errorf("max %v < p99 %v", h.MaxMS, h.P99MS)
	}
	if snap.Counters["http.status.2xx"] < 2 {
		t.Errorf("2xx counter = %d, want >= 2", snap.Counters["http.status.2xx"])
	}
	if snap.Counters["http.status.4xx"] != 1 {
		t.Errorf("4xx counter = %d, want 1", snap.Counters["http.status.4xx"])
	}
	if snap.Counters["predictor.cache.hits"] != 1 || snap.Counters["predictor.cache.misses"] != 1 {
		t.Errorf("mirrored cache counters = %d hits / %d misses, want 1/1",
			snap.Counters["predictor.cache.hits"], snap.Counters["predictor.cache.misses"])
	}
}

func TestTracesEndpoint(t *testing.T) {
	s := New(testCampaign(t), Config{Workers: 2, RequestTimeout: time.Minute, TraceBufferSize: 2})
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":9}`, firstBench(testDB))
	for i := 0; i < 3; i++ {
		post(t, s, "/v1/predict/uc1", body)
	}
	rec := getRec(t, s, "/v1/traces")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var resp TracesResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Completed != 3 {
		t.Errorf("completed = %d, want 3", resp.Completed)
	}
	if len(resp.Traces) != 2 {
		t.Fatalf("buffer of 2 should keep 2 traces, got %d", len(resp.Traces))
	}
	for i, tr := range resp.Traces {
		if len(tr) == 0 {
			t.Errorf("trace %d rendered empty", i)
		}
	}
	// /v1/traces itself is deliberately not instrumented: reading the
	// buffer must not grow it.
	getRec(t, s, "/v1/traces")
	if total, _ := s.Tracer().Completed(); total != 3 {
		t.Errorf("GET /v1/traces grew the trace count to %d", total)
	}
}

func TestSlowTraceLogged(t *testing.T) {
	SetClock(randx.StepClock(time.Unix(1700000000, 0), 25*time.Millisecond))
	defer SetClock(randx.SystemClock)
	s := New(testCampaign(t), Config{
		Workers:            2,
		RequestTimeout:     time.Minute,
		SlowTraceThreshold: time.Millisecond, // every stepped request is "slow"
	})
	rec := getRec(t, s, "/v1/systems")
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if _, slow := s.Tracer().Completed(); slow != 1 {
		t.Errorf("slow trace count = %d, want 1", slow)
	}
}

func TestPprofGating(t *testing.T) {
	off := newTestServer(t)
	if rec := getRec(t, off, "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: /debug/pprof/ = %d, want 404", rec.Code)
	}
	if rec := getRec(t, off, "/debug/vars"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof disabled: /debug/vars = %d, want 404", rec.Code)
	}
	on := New(testCampaign(t), Config{Workers: 2, RequestTimeout: time.Minute, EnablePprof: true})
	if rec := getRec(t, on, "/debug/pprof/"); rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: /debug/pprof/ = %d, want 200", rec.Code)
	}
	if rec := getRec(t, on, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: /debug/pprof/cmdline = %d, want 200", rec.Code)
	}
	rec := getRec(t, on, "/debug/vars")
	if rec.Code != http.StatusOK {
		t.Errorf("pprof enabled: /debug/vars = %d, want 200", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
}
