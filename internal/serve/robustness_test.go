package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
)

// get issues a GET to the handler and decodes the JSON response.
func get(t *testing.T, s *Server, path string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s: non-JSON response (%d): %q", path, rec.Code, rec.Body.String())
	}
	return rec, decoded
}

func TestStatusEndpointHealthy(t *testing.T) {
	s := newTestServer(t)
	rec, resp := get(t, s, "/v1/status")
	if rec.Code != http.StatusOK || resp["status"] != "ok" {
		t.Fatalf("fresh server status: %d %v", rec.Code, resp)
	}
	// After serving a prediction the dataset exists; a clean campaign
	// must report a quarantine section with zero quarantined runs.
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, firstBench(testDB))
	if rec, pr := post(t, s, "/v1/predict/uc1", body); rec.Code != http.StatusOK {
		t.Fatalf("predict: %d %v", rec.Code, pr)
	}
	_, resp = get(t, s, "/v1/status")
	q, ok := resp["quarantine"].([]any)
	if !ok || len(q) == 0 {
		t.Fatalf("quarantine section missing after dataset build: %v", resp)
	}
	first := q[0].(map[string]any)
	if first["runs_quarantined"].(float64) != 0 {
		t.Errorf("clean campaign reports quarantined runs: %v", first)
	}
}

func TestDegradedServingVisibleEndToEnd(t *testing.T) {
	s := newTestServer(t)
	s.Predictor().SetFitHook(func(info core.FitInfo) error {
		if info.Fallback {
			return nil
		}
		return errors.New("drill: primary fits disabled")
	})
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":3}`, firstBench(testDB))
	rec, resp := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded predict: %d %v", rec.Code, resp)
	}
	if resp["degraded"] != true || resp["fallback"] != "knn" {
		t.Fatalf("response must flag the fallback: degraded=%v fallback=%v",
			resp["degraded"], resp["fallback"])
	}
	// The flip is visible within the same request on every surface:
	// /v1/status, /readyz, and the expvar metrics snapshot.
	rec, status := get(t, s, "/v1/status")
	if rec.Code != http.StatusOK || status["status"] != "degraded" {
		t.Fatalf("/v1/status = %d %v, want degraded", rec.Code, status)
	}
	if status["breakers_open"].(float64) < 1 || status["knn_served"].(float64) < 1 {
		t.Errorf("status counters: %v", status)
	}
	brs, ok := status["breakers"].([]any)
	if !ok || len(brs) == 0 {
		t.Fatalf("breaker list missing: %v", status)
	}
	br := brs[0].(map[string]any)
	if br["open"] != true || br["last_error"] == "" {
		t.Errorf("breaker entry: %v", br)
	}
	rec, ready := get(t, s, "/readyz")
	if rec.Code != http.StatusOK || ready["status"] != "degraded" {
		t.Errorf("/readyz = %d %v, want 200 degraded (still serving)", rec.Code, ready)
	}
	_, metrics := get(t, s, "/metrics")
	deg, ok := metrics["degraded"].(map[string]any)
	if !ok || deg["knn_served"].(float64) < 1 || deg["breakers_open"].(float64) < 1 {
		t.Errorf("metrics degraded gauge: %v", metrics["degraded"])
	}
}

func TestBreakerOpen503WithRetryAfter(t *testing.T) {
	s := newTestServer(t)
	s.Predictor().SetFitHook(func(core.FitInfo) error {
		return errors.New("drill: total fit outage")
	})
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, firstBench(testDB))
	// First request attempts the fit, fails, trips the breaker: 500.
	rec, _ := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("failed fit: status %d, want 500", rec.Code)
	}
	// Second request is rejected by the open breaker: 503 + Retry-After.
	rec, resp := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d (%v), want 503", rec.Code, resp)
	}
	ra := rec.Header().Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 {
		t.Errorf("Retry-After = %q, want integer seconds >= 1", ra)
	}
}

func TestQuarantinedBenchmarkIs422(t *testing.T) {
	db, _, err := faults.Inject(testCampaign(t), faults.Config{})
	if err != nil {
		t.Fatal(err)
	}
	intel, _ := db.System("intel")
	for i := range intel.Benchmarks[0].Runs {
		intel.Benchmarks[0].Runs[i].Seconds = math.NaN()
	}
	s := New(db, Config{Workers: 2, RequestTimeout: time.Minute})
	bad := intel.Benchmarks[0].Workload.ID()
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, bad)
	rec, resp := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined benchmark: status %d (%v), want 422", rec.Code, resp)
	}
	// The unusable benchmark is listed in the status quarantine view.
	_, status := get(t, s, "/v1/status")
	found := false
	for _, qv := range status["quarantine"].([]any) {
		q := qv.(map[string]any)
		if q["system"] != "intel" {
			continue
		}
		for _, b := range q["unusable_benchmarks"].([]any) {
			if b == bad {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("unusable benchmark %q missing from /v1/status quarantine: %v", bad, status["quarantine"])
	}
	// Its healthy siblings keep serving.
	ok := intel.Benchmarks[1].Workload.ID()
	rec, _ = post(t, s, "/v1/predict/uc1", fmt.Sprintf(`{"system":"intel","benchmark":%q}`, ok))
	if rec.Code != http.StatusOK {
		t.Errorf("healthy benchmark beside a quarantined one: status %d", rec.Code)
	}
}

func TestRetryDelayBounds(t *testing.T) {
	for i := 0; i < 50; i++ {
		if d := retryDelay("", 0); d < loadgenBaseBackoff || d > loadgenBaseBackoff*3/2 {
			t.Fatalf("attempt 0 delay %v outside [base, 1.5*base]", d)
		}
		if d := retryDelay("2", 0); d < 2*time.Second || d > 3*time.Second {
			t.Fatalf("Retry-After 2s delay %v outside [2s, 3s]", d)
		}
		if d := retryDelay("", 12); d < loadgenMaxBackoff || d > loadgenMaxBackoff*3/2 {
			t.Fatalf("late-attempt delay %v not capped to [max, 1.5*max]", d)
		}
		// Malformed headers fall back to exponential backoff.
		if d := retryDelay("soon", 1); d < 2*loadgenBaseBackoff || d > 3*loadgenBaseBackoff {
			t.Fatalf("attempt 1 delay %v outside [2*base, 3*base]", d)
		}
	}
}

func TestLoadgenRetriesShedRequests(t *testing.T) {
	var calls int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		if calls <= 2 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"worker pool saturated"}`, http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(PredictResponse{Cache: "hit"})
	}))
	defer ts.Close()
	opts := LoadgenOptions{URL: ts.URL, MaxRetries: 3}.withDefaults()
	client := &http.Client{Timeout: 10 * time.Second}
	start := time.Now()
	hit, _, err := loadgenOnce(context.Background(), client, ts.URL, &opts, "npb/bt")
	if err != nil {
		t.Fatalf("loadgen should retry through 503s: %v", err)
	}
	if !hit || calls != 3 {
		t.Errorf("hit=%v calls=%d, want cache hit on 3rd call", hit, calls)
	}
	// Two Retry-After:1s waits (plus jitter) must actually have elapsed.
	if elapsed := time.Since(start); elapsed < 2*time.Second {
		t.Errorf("elapsed %v, want >= 2s of honored Retry-After", elapsed)
	}
	// With retries exhausted the 503 surfaces as an error.
	calls = -100 // stay in the 503 branch for all attempts
	opts.MaxRetries = 0
	if _, _, err := loadgenOnce(context.Background(), client, ts.URL, &opts, "npb/bt"); err == nil {
		t.Error("MaxRetries=0 must surface the 503")
	}
}
