package serve

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/drift"
	"repro/internal/measure"
)

// DriftScenarioOptions parameterizes the streaming-drift experiment
// (varserve's -driftscenario flag): two self-hosted servers are fed
// the same drifted measurement stream over POST /v1/measurements —
// one with the refit loop live (treatment), one with an unbreachable
// KS threshold so it observes the drift but never reacts (no-refit
// control) — and the report compares detection latency and the
// detector's residual KS after the treatment's refits land.
type DriftScenarioOptions struct {
	// DB is the measurement database both servers serve from (the
	// treatment merges drifted windows into its own copy-on-write
	// snapshots; the shared seed database is never mutated).
	DB *measure.Database
	// System names the drifted system (default: the first).
	System string
	// Drift tunes the treatment detector (zero value = defaults).
	Drift drift.Config
	// ScaleFactor scales each cell's wall times to fake the drifted
	// distribution (default 2.0 — disjoint support, KS 1 vs baseline).
	ScaleFactor float64
	// Batches and BatchSize shape the drifted stream per cell
	// (defaults 12 batches of 16 runs).
	Batches   int
	BatchSize int
	// ProbeBatches are streamed per cell after the refits settle; the
	// last probe's KS is the residual-drift reading (default 2).
	ProbeBatches int
}

func (o DriftScenarioOptions) withDefaults() DriftScenarioOptions {
	if o.ScaleFactor <= 0 {
		o.ScaleFactor = 2.0
	}
	if o.Batches <= 0 {
		o.Batches = 12
	}
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.ProbeBatches <= 0 {
		o.ProbeBatches = 2
	}
	return o
}

// DriftCellOutcome is one cell's scenario record.
type DriftCellOutcome struct {
	Cell string `json:"cell"`
	// TrippedBatch is the 1-based batch at which the treatment
	// detector tripped (0 = never); DetectionRuns the drifted runs
	// ingested up to and including that batch.
	TrippedBatch  int `json:"tripped_batch"`
	DetectionRuns int `json:"detection_runs"`
	// RefitOK/RefitFail count the cell's background refits.
	RefitOK   int `json:"refit_ok"`
	RefitFail int `json:"refit_fail"`
	// FinalKS is the last probe KS against the treatment's refreshed
	// baseline; ControlKS the same probe against the control's stale
	// baseline.
	FinalKS   float64 `json:"final_ks"`
	ControlKS float64 `json:"control_ks"`
}

// DriftScenarioResult is the aggregate scenario report.
type DriftScenarioResult struct {
	System string             `json:"system"`
	Cells  []DriftCellOutcome `json:"cells"`
	// MeanDetectionBatches averages the per-cell trip latency (tripped
	// cells only); MeanFinalKS / MeanControlKS average the residual
	// probe KS across cells.
	MeanDetectionBatches float64 `json:"mean_detection_batches"`
	MeanFinalKS          float64 `json:"mean_final_ks"`
	MeanControlKS        float64 `json:"mean_control_ks"`
	// Refit totals across the treatment server.
	RefitOK   int           `json:"refit_ok"`
	RefitFail int           `json:"refit_fail"`
	RefitShed int           `json:"refit_shed"`
	Elapsed   time.Duration `json:"elapsed"`
}

// String renders the report the way cmd/varserve prints it.
func (r *DriftScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "drift scenario: system %s, %d cells, %v\n", r.System, len(r.Cells), r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "  detection: mean %.1f batches to trip\n", r.MeanDetectionBatches)
	fmt.Fprintf(&b, "  refits: %d ok, %d failed, %d shed\n", r.RefitOK, r.RefitFail, r.RefitShed)
	fmt.Fprintf(&b, "  residual KS after refit: %.3f (no-refit control: %.3f)", r.MeanFinalKS, r.MeanControlKS)
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "\n    %-24s trip@%-2d (%d runs)  refits=%d  ks=%.3f vs control %.3f",
			c.Cell, c.TrippedBatch, c.DetectionRuns, c.RefitOK, c.FinalKS, c.ControlKS)
	}
	return b.String()
}

// DriftScenario runs the experiment: self-host treatment and control
// servers over the same database, stream the drifted batches to both,
// let the treatment's background refits settle, then probe both with
// fresh drifted batches and read the detectors' residual KS.
func DriftScenario(ctx context.Context, opts DriftScenarioOptions) (*DriftScenarioResult, error) {
	opts = opts.withDefaults()
	if opts.DB == nil || len(opts.DB.Systems) == 0 {
		return nil, fmt.Errorf("drift scenario: no database")
	}
	sd := &opts.DB.Systems[0]
	if opts.System != "" {
		var ok bool
		if sd, ok = opts.DB.System(opts.System); !ok {
			return nil, fmt.Errorf("drift scenario: unknown system %q", opts.System)
		}
	}

	controlCfg := opts.Drift
	controlCfg.KSThreshold = 2 // KS is bounded by 1: observes, never trips
	treatment, err := scenarioServer(ctx, opts.DB, opts.Drift)
	if err != nil {
		return nil, err
	}
	defer treatment.stop()
	control, err := scenarioServer(ctx, opts.DB, controlCfg)
	if err != nil {
		return nil, err
	}
	defer control.stop()

	start := clock()
	res := &DriftScenarioResult{System: sd.SystemName}
	// Phase 1: the drifted stream, to both servers in the same order.
	outcomes := make([]DriftCellOutcome, len(sd.Benchmarks))
	for i := range sd.Benchmarks {
		bench := &sd.Benchmarks[i]
		stream := driftedStream(bench, opts.ScaleFactor, opts.Batches*opts.BatchSize, 0)
		tr, err := StreamMeasurements(ctx, StreamOptions{
			URL: treatment.url, System: sd.SystemName, Benchmark: bench.Workload.ID(),
			Runs: stream, BatchSize: opts.BatchSize,
		})
		if err != nil {
			return nil, err
		}
		if _, err := StreamMeasurements(ctx, StreamOptions{
			URL: control.url, System: sd.SystemName, Benchmark: bench.Workload.ID(),
			Runs: stream, BatchSize: opts.BatchSize,
		}); err != nil {
			return nil, err
		}
		outcomes[i] = DriftCellOutcome{
			Cell:          sd.SystemName + "/" + bench.Workload.ID(),
			TrippedBatch:  tr.TrippedBatch,
			DetectionRuns: tr.TrippedBatch * opts.BatchSize,
		}
	}
	// Phase 2: let every queued background refit finish.
	treatment.srv.Drift().Wait()
	// Phase 3: probe both detectors with fresh drifted batches. The
	// treatment's baseline now contains the merged window, the
	// control's is still the original campaign.
	for i := range sd.Benchmarks {
		bench := &sd.Benchmarks[i]
		probe := driftedStream(bench, opts.ScaleFactor, opts.ProbeBatches*opts.BatchSize, opts.Batches*opts.BatchSize)
		for _, tgt := range []struct {
			url string
			ks  *float64
		}{{treatment.url, &outcomes[i].FinalKS}, {control.url, &outcomes[i].ControlKS}} {
			pr, err := StreamMeasurements(ctx, StreamOptions{
				URL: tgt.url, System: sd.SystemName, Benchmark: bench.Workload.ID(),
				Runs: probe, BatchSize: opts.BatchSize,
			})
			if err != nil {
				return nil, err
			}
			if pr.Final != nil && pr.Final.Drift != nil {
				*tgt.ks = pr.Final.Drift.KS
			}
		}
	}
	treatment.srv.Drift().Wait() // probes may have re-tripped

	byCell := map[string]drift.CellStatus{}
	for _, cs := range treatment.srv.Drift().Snapshot() {
		byCell[cs.Cell] = cs
		res.RefitOK += cs.RefitOK
		res.RefitFail += cs.RefitFail
		res.RefitShed += cs.RefitShed
	}
	var tripped int
	for i := range outcomes {
		o := &outcomes[i]
		if cs, ok := byCell[o.Cell]; ok {
			o.RefitOK, o.RefitFail = cs.RefitOK, cs.RefitFail
		}
		if o.TrippedBatch > 0 {
			tripped++
			res.MeanDetectionBatches += float64(o.TrippedBatch)
		}
		res.MeanFinalKS += o.FinalKS
		res.MeanControlKS += o.ControlKS
	}
	if tripped > 0 {
		res.MeanDetectionBatches /= float64(tripped)
	}
	if len(outcomes) > 0 {
		res.MeanFinalKS /= float64(len(outcomes))
		res.MeanControlKS /= float64(len(outcomes))
	}
	res.Cells = outcomes
	res.Elapsed = clock.Since(start)
	return res, nil
}

// driftedStream builds n wire runs for a cell by cycling its campaign
// runs (starting at offset, so probe batches continue the stream
// rather than replaying it) with wall times scaled by factor. The
// counters are passed through untouched, so every run is
// schema-valid: the drift is purely in the run-time distribution.
func driftedStream(bench *measure.BenchmarkData, factor float64, n, offset int) []ProbeRun {
	out := make([]ProbeRun, n)
	for i := range out {
		r := bench.Runs[(offset+i)%len(bench.Runs)]
		out[i] = ProbeRun{Seconds: r.Seconds * factor, Metrics: r.Metrics}
	}
	return out
}

// scenarioHost is one self-hosted scenario server.
type scenarioHost struct {
	srv  *Server
	url  string
	stop func()
}

// scenarioServer builds, binds, and serves a scenario instance on a
// loopback port.
func scenarioServer(ctx context.Context, db *measure.Database, cfg drift.Config) (*scenarioHost, error) {
	//lint:allow ctxflow constructor wiring only: spans start later inside refit callbacks that receive their own ctx
	srv := New(db, Config{Addr: "127.0.0.1:0", Drift: cfg})
	if err := srv.Listen(); err != nil {
		return nil, err
	}
	sctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	//lint:allow goroutinecheck one serving goroutine per scenario host, joined by stop() before DriftScenario returns
	go func() {
		defer close(done)
		_ = srv.Serve(sctx) // a canceled context is the normal exit
	}()
	return &scenarioHost{
		srv: srv,
		url: "http://" + srv.Addr(),
		stop: func() {
			cancel()
			<-done
		},
	}, nil
}
