package serve

import (
	"context"
	"testing"

	"repro/internal/drift"
)

// TestDriftScenarioSmoke runs a miniature streaming-drift experiment
// end to end over real loopback servers: every cell of the drifted
// system must trip on the first evaluated batch (hysteresis 1), the
// treatment's refits must pull the detector's residual KS below the
// no-refit control, and the control must keep reading (near-)maximal
// drift against its stale baseline.
func TestDriftScenarioSmoke(t *testing.T) {
	res, err := DriftScenario(context.Background(), DriftScenarioOptions{
		DB:     testCampaign(t),
		System: "intel",
		Drift: drift.Config{
			WindowSize: 32, MinWindow: 16, Hysteresis: 1, Seed: 7,
		},
		Batches: 2, BatchSize: 16, ProbeBatches: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.System != "intel" || len(res.Cells) == 0 {
		t.Fatalf("bad report shape: %+v", res)
	}
	for _, c := range res.Cells {
		// Fill 16 = MinWindow on batch 1, disjoint support, hysteresis
		// 1: the first evaluation must trip.
		if c.TrippedBatch != 1 {
			t.Errorf("%s: tripped at batch %d, want 1", c.Cell, c.TrippedBatch)
		}
		if c.RefitOK == 0 {
			t.Errorf("%s: no successful refit recorded", c.Cell)
		}
		if c.RefitFail != 0 {
			t.Errorf("%s: %d refit failures in a healthy run", c.Cell, c.RefitFail)
		}
	}
	if res.RefitOK == 0 || res.RefitFail != 0 {
		t.Errorf("refit totals: ok=%d fail=%d shed=%d", res.RefitOK, res.RefitFail, res.RefitShed)
	}
	// The ×2 stream has (nearly) disjoint support with the stale
	// baseline, so the control reads near-maximal KS forever; the
	// treatment's merges must pull the residual well below it.
	if res.MeanControlKS < 0.8 {
		t.Errorf("no-refit control KS %.3f, want near-maximal drift", res.MeanControlKS)
	}
	if res.MeanFinalKS > res.MeanControlKS-0.1 {
		t.Errorf("refits did not recover: residual KS %.3f vs control %.3f",
			res.MeanFinalKS, res.MeanControlKS)
	}
	if res.String() == "" {
		t.Error("empty report rendering")
	}
	if _, err := DriftScenario(context.Background(), DriftScenarioOptions{
		DB: testCampaign(t), System: "vax",
	}); err == nil {
		t.Error("unknown system must be rejected")
	}
}
