package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/measure"
	"repro/internal/perfsim"
)

var (
	testDBOnce sync.Once
	testDB     *measure.Database
)

// testCampaign collects a reduced campaign (16 benchmarks, 2 systems)
// shared across the package's tests.
func testCampaign(t *testing.T) *measure.Database {
	t.Helper()
	testDBOnce.Do(func() {
		db, err := measure.Collect(
			[]*perfsim.System{perfsim.NewIntelSystem(), perfsim.NewAMDSystem()},
			perfsim.TableI()[:16],
			measure.Config{Runs: 80, ProbeRuns: 12, Seed: 20250805},
		)
		if err != nil {
			t.Fatalf("collect: %v", err)
		}
		testDB = db
	})
	if testDB == nil {
		t.Fatal("campaign unavailable")
	}
	return testDB
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	return New(testCampaign(t), Config{Workers: 4, RequestTimeout: time.Minute})
}

// post sends a JSON body to the handler and decodes the response.
func post(t *testing.T, s *Server, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("%s: non-JSON response (%d): %q", path, rec.Code, rec.Body.String())
	}
	return rec, decoded
}

func firstBench(db *measure.Database) string {
	return db.Systems[0].Benchmarks[0].Workload.ID()
}

func TestHealthAndReady(t *testing.T) {
	s := newTestServer(t)
	for _, path := range []string{"/healthz", "/readyz"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: %d, want 200", path, rec.Code)
		}
	}
}

func TestSystemsEndpoint(t *testing.T) {
	s := newTestServer(t)
	req := httptest.NewRequest(http.MethodGet, "/v1/systems", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var sys SystemsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if len(sys.Systems) != 2 {
		t.Fatalf("want 2 systems, got %d", len(sys.Systems))
	}
	if len(sys.Systems[0].Benchmarks) != 16 {
		t.Errorf("want 16 benchmarks, got %d", len(sys.Systems[0].Benchmarks))
	}
	if sys.RunsPerBenchmark != 80 {
		t.Errorf("runs_per_benchmark = %d, want 80", sys.RunsPerBenchmark)
	}
}

func TestPredictUC1HappyPath(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":7}`, firstBench(testDB))
	rec, resp := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, resp)
	}
	if resp["use_case"].(float64) != 1 {
		t.Error("use_case != 1")
	}
	if resp["cache"] != "miss" {
		t.Errorf("first request cache = %v, want miss", resp["cache"])
	}
	q, ok := resp["quantiles"].(map[string]any)
	if !ok || q["p50"] == nil || q["p99"] == nil {
		t.Errorf("quantiles missing: %v", resp["quantiles"])
	}
	if resp["ks_vs_measured"] == nil {
		t.Error("benchmark request must score against ground truth")
	}
	ks := resp["ks_vs_measured"].(float64)
	if ks < 0 || ks > 1 {
		t.Errorf("KS = %v out of [0,1]", ks)
	}
	hist, ok := resp["histogram"].(map[string]any)
	if !ok || len(hist["density"].([]any)) != 50 {
		t.Errorf("histogram should have 50 density bins: %v", resp["histogram"])
	}
	if m, ok := resp["measured"].(map[string]any); !ok || m["n"].(float64) != 80 {
		t.Errorf("measured summary wrong: %v", resp["measured"])
	}
}

func TestPredictUC2HappyPath(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"source":"amd","target":"intel","benchmark":%q,"model":"rf","seed":7}`, firstBench(testDB))
	rec, resp := post(t, s, "/v1/predict/uc2", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, resp)
	}
	if resp["use_case"].(float64) != 2 {
		t.Error("use_case != 2")
	}
	if resp["model"] != "RF" {
		t.Errorf("model = %v, want RF", resp["model"])
	}
	if resp["ks_vs_measured"] == nil {
		t.Error("UC2 benchmark request must score against ground truth")
	}
}

func TestPredictBadJSON(t *testing.T) {
	s := newTestServer(t)
	rec, resp := post(t, s, "/v1/predict/uc1", `{"system": "intel",`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if resp["error"] == nil {
		t.Error("400 body must carry an error message")
	}
}

func TestPredictValidation(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		path, body string
	}{
		{"/v1/predict/uc1", `{"benchmark":"npb/bt"}`}, // no system
		{"/v1/predict/uc1", `{"system":"intel"}`},     // neither benchmark nor probe
		{"/v1/predict/uc1", fmt.Sprintf(`{"system":"intel","benchmark":%q,"probe_runs":[{"seconds":1,"metrics":[]}]}`, firstBench(testDB))}, // both
		{"/v1/predict/uc2", `{"source":"amd","benchmark":"npb/bt"}`},                                                                        // no target
		{"/v1/predict/uc1", `{"system":"intel","benchmark":"npb/bt","model":"svm"}`},                                                        // bad model
		{"/v1/predict/uc1", `{"system":"intel","benchmark":"npb/bt","representation":"fourier"}`},                                           // bad rep
	}
	for _, c := range cases {
		rec, resp := post(t, s, c.path, c.body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d, want 400", c.path, c.body, rec.Code)
		}
		if resp["error"] == nil {
			t.Errorf("%s: missing error body", c.body)
		}
	}
}

func TestPredictUnknownIDsGet404(t *testing.T) {
	s := newTestServer(t)
	cases := []struct {
		path, body string
	}{
		{"/v1/predict/uc1", `{"system":"sparc","benchmark":"npb/bt"}`},
		{"/v1/predict/uc1", `{"system":"intel","benchmark":"nosuite/nothing"}`},
		{"/v1/predict/uc2", `{"source":"amd","target":"m68k","benchmark":"npb/bt"}`},
		{"/v1/predict/uc2", `{"source":"amd","target":"intel","benchmark":"nosuite/nothing"}`},
	}
	for _, c := range cases {
		rec, resp := post(t, s, c.path, c.body)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404 (%v)", c.body, rec.Code, resp)
		}
		msg, _ := resp["error"].(string)
		if msg == "" {
			t.Errorf("%s: 404 must carry a JSON error body", c.body)
		}
		if code, _ := resp["code"].(float64); code != 404 {
			t.Errorf("%s: body code = %v, want 404", c.body, resp["code"])
		}
	}
}

func TestPredictCanceledContext(t *testing.T) {
	s := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, firstBench(testDB))
	req := httptest.NewRequest(http.MethodPost, "/v1/predict/uc1", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest && rec.Code != http.StatusGatewayTimeout {
		t.Errorf("canceled request: status %d, want 499", rec.Code)
	}
	// The server must stay serviceable afterwards.
	rec2, _ := post(t, s, "/v1/predict/uc1", body)
	if rec2.Code != http.StatusOK {
		t.Errorf("request after cancellation: status %d, want 200", rec2.Code)
	}
}

func TestPredictDeadline(t *testing.T) {
	s := New(testCampaign(t), Config{Workers: 1, RequestTimeout: time.Nanosecond})
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, firstBench(testDB))
	rec, _ := post(t, s, "/v1/predict/uc1", body)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504", rec.Code)
	}
}

func TestProbeProfileRequest(t *testing.T) {
	s := newTestServer(t)
	b := &testDB.Systems[0].Benchmarks[2]
	probe := make([]ProbeRun, 10)
	for i, r := range b.ProbeRuns[:10] {
		probe[i] = ProbeRun{Seconds: r.Seconds, Metrics: r.Metrics}
	}
	reqBody, _ := json.Marshal(PredictRequest{System: "intel", ProbeRuns: probe, N: 200, Seed: 7})
	rec, resp := post(t, s, "/v1/predict/uc1", string(reqBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, resp)
	}
	if resp["n"].(float64) != 200 {
		t.Errorf("n = %v, want 200", resp["n"])
	}
	if resp["ks_vs_measured"] != nil {
		t.Error("raw-profile prediction has no ground truth to score against")
	}
}

func TestConcurrentRequests(t *testing.T) {
	s := newTestServer(t)
	benches := testDB.Systems[0].Benchmarks
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"seed":7}`,
				benches[g%len(benches)].Workload.ID())
			req := httptest.NewRequest(http.MethodPost, "/v1/predict/uc1", strings.NewReader(body))
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				errs <- fmt.Sprintf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.String())
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t)
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q}`, firstBench(testDB))
	post(t, s, "/v1/predict/uc1", body)
	post(t, s, "/v1/predict/uc1", body)

	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("metrics is not JSON: %v", err)
	}
	reqs, ok := m["requests"].(map[string]any)
	if !ok || reqs["POST /v1/predict/uc1"].(float64) < 2 {
		t.Errorf("request counter missing or low: %v", m["requests"])
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache stats missing: %v", m)
	}
	if cache["misses"].(float64) < 1 || cache["hits"].(float64) < 1 {
		t.Errorf("cache stats should show >=1 miss and >=1 hit: %v", cache)
	}
	lat, ok := m["latency"].(map[string]any)
	if !ok || lat["POST /v1/predict/uc1"] == nil {
		t.Errorf("latency summary missing: %v", m["latency"])
	}
}

// stripVolatile removes the fields that legitimately differ between a
// miss and a hit response.
func stripVolatile(m map[string]any) map[string]any {
	out := map[string]any{}
	for k, v := range m {
		if k == "cache" || k == "elapsed_ms" {
			continue
		}
		out[k] = v
	}
	return out
}

func TestCacheHitIdenticalResponse(t *testing.T) {
	s := newTestServer(t)
	hits0 := s.Predictor().CacheStats().Hits
	body := fmt.Sprintf(`{"system":"intel","benchmark":%q,"model":"xgboost","seed":11}`, firstBench(testDB))
	rec1, resp1 := post(t, s, "/v1/predict/uc1", body)
	rec2, resp2 := post(t, s, "/v1/predict/uc1", body)
	if rec1.Code != http.StatusOK || rec2.Code != http.StatusOK {
		t.Fatalf("statuses %d/%d", rec1.Code, rec2.Code)
	}
	if resp1["cache"] != "miss" || resp2["cache"] != "hit" {
		t.Errorf("cache fields = %v/%v, want miss/hit", resp1["cache"], resp2["cache"])
	}
	if s.Predictor().CacheStats().Hits != hits0+1 {
		t.Error("hit counter did not increment")
	}
	if !reflect.DeepEqual(stripVolatile(resp1), stripVolatile(resp2)) {
		t.Error("identical request with identical seed must produce identical prediction")
	}
}

func TestLoadgenEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end loadgen")
	}
	s := newTestServer(t)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	res, err := Loadgen(context.Background(), LoadgenOptions{
		URL:         ts.URL,
		Requests:    48,
		Concurrency: 4,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("loadgen saw %d errors", res.Errors)
	}
	if int(res.Cold.Count+res.Warm.Count) != res.Requests {
		t.Errorf("cold %d + warm %d != %d requests", res.Cold.Count, res.Warm.Count, res.Requests)
	}
	// 16 distinct benchmarks -> 16 cold fits, the rest warm.
	if res.Cold.Count != 16 {
		t.Errorf("cold count = %d, want 16 (one per distinct benchmark)", res.Cold.Count)
	}
	if res.RPS <= 0 || res.String() == "" {
		t.Error("report not rendered")
	}
	// Graceful shutdown of the serve loop.
	srv := New(testCampaign(t), Config{Addr: "127.0.0.1:0"})
	if err := srv.Listen(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx) }()
	resp, err := http.Get("http://" + srv.Addr() + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz over TCP: %d", resp.StatusCode)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("server did not drain within 15s")
	}
}

func TestBatchPredictUC1(t *testing.T) {
	s := newTestServer(t)
	profiles := make([][]ProbeRun, 3)
	for k := range profiles {
		b := &testDB.Systems[0].Benchmarks[k]
		profiles[k] = make([]ProbeRun, 10)
		for i, r := range b.ProbeRuns[:10] {
			profiles[k][i] = ProbeRun{Seconds: r.Seconds, Metrics: r.Metrics}
		}
	}
	reqBody, _ := json.Marshal(BatchPredictRequest{System: "intel", Profiles: profiles, N: 150, Seed: 7})
	rec, resp := post(t, s, "/v1/predict/uc1/batch", string(reqBody))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %v", rec.Code, resp)
	}
	if resp["count"].(float64) != 3 {
		t.Errorf("count = %v, want 3", resp["count"])
	}
	results := resp["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("%d results, want 3", len(results))
	}
	for i, r := range results {
		res := r.(map[string]any)
		if res["n"].(float64) != 150 {
			t.Errorf("result %d: n = %v, want 150", i, res["n"])
		}
		if len(res["quantiles"].(map[string]any)) == 0 {
			t.Errorf("result %d: no quantiles", i)
		}
	}

	// The three profiles share one model fit; repeating the batch is a
	// deterministic cache hit.
	rec2, resp2 := post(t, s, "/v1/predict/uc1/batch", string(reqBody))
	if rec2.Code != http.StatusOK {
		t.Fatalf("repeat status %d: %v", rec2.Code, resp2)
	}
	if resp2["cache"] != "hit" {
		t.Errorf("repeat batch cache = %v, want hit", resp2["cache"])
	}
	got, _ := json.Marshal(resp["results"])
	got2, _ := json.Marshal(resp2["results"])
	if string(got) != string(got2) {
		t.Error("repeat batch results differ")
	}

	// Batch result 0 matches the single-profile endpoint bit-for-bit.
	singleBody, _ := json.Marshal(PredictRequest{System: "intel", ProbeRuns: profiles[0], N: 150, Seed: 7})
	recS, respS := post(t, s, "/v1/predict/uc1", string(singleBody))
	if recS.Code != http.StatusOK {
		t.Fatalf("single status %d: %v", recS.Code, respS)
	}
	bq, _ := json.Marshal(results[0].(map[string]any)["quantiles"])
	sq, _ := json.Marshal(respS["quantiles"])
	if string(bq) != string(sq) {
		t.Errorf("batch[0] quantiles %s != single-profile %s", bq, sq)
	}
}

func TestBatchPredictValidation(t *testing.T) {
	s := newTestServer(t)
	oneRun := `[{"seconds":1,"metrics":[1,2]}]`
	over := `{"system":"intel","profiles":[` + oneRun
	for i := 1; i < 257; i++ {
		over += "," + oneRun
	}
	over += `]}`
	for _, tc := range []struct {
		body string
		code int
	}{
		{`{"profiles":[` + oneRun + `]}`, http.StatusBadRequest},              // no system
		{`{"system":"intel","profiles":[]}`, http.StatusBadRequest},           // empty batch
		{over, http.StatusBadRequest},                                         // over cap
		{`{"system":"vax","profiles":[` + oneRun + `]}`, http.StatusNotFound}, // unknown system
	} {
		rec, resp := post(t, s, "/v1/predict/uc1/batch", tc.body)
		if rec.Code != tc.code {
			t.Errorf("body %.60s...: status %d, want %d (%v)", tc.body, rec.Code, tc.code, resp)
		}
	}
}
