package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/measure"
)

// Config tunes the server. The zero value selects sensible defaults.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// Workers bounds concurrent predictions (default GOMAXPROCS). A
	// request that cannot acquire a worker before its deadline gets 503.
	Workers int
	// RequestTimeout bounds each prediction (default 30s). A request
	// whose prediction outlives it gets 504.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server is the varserve HTTP prediction service: routing, the bounded
// worker pool, metrics, and the cached predictor.
type Server struct {
	cfg     Config
	pred    *core.Predictor
	metrics *Metrics
	sem     chan struct{}
	ready   atomic.Bool
	mux     *http.ServeMux
	ln      net.Listener
}

// New builds a server over a loaded measurement database.
func New(db *measure.Database, cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		pred:    core.NewPredictor(db),
		metrics: NewMetrics(),
	}
	s.sem = make(chan struct{}, s.cfg.Workers)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/predict/uc1", s.instrument("POST /v1/predict/uc1", s.handleUC1))
	s.mux.HandleFunc("POST /v1/predict/uc2", s.instrument("POST /v1/predict/uc2", s.handleUC2))
	s.mux.HandleFunc("POST /v1/predict/uc1/batch", s.instrument("POST /v1/predict/uc1/batch", s.handleUC1Batch))
	s.mux.HandleFunc("GET /v1/systems", s.instrument("GET /v1/systems", s.handleSystems))
	s.mux.HandleFunc("GET /v1/status", s.instrument("GET /v1/status", s.handleStatus))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.ready.Store(true)
	return s
}

// Handler exposes the routing table (used directly by tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Predictor exposes the cached predictor (warmup, cache statistics).
func (s *Server) Predictor() *core.Predictor { return s.pred }

// Metrics exposes the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Listen binds the configured address. Addr reports the bound address
// afterwards (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the HTTP server until ctx is canceled, then drains
// gracefully: readiness flips to 503 (so load balancers stop routing)
// and in-flight requests get DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	//lint:allow lockcheck process-lifetime listener goroutine joined via errc/Shutdown, not request work for the pool
	go func() { errc <- hs.Serve(s.ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.ready.Store(false)
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// instrument wraps a handler with in-flight, latency, and status
// accounting.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := clock()
		s.metrics.inFlight.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		s.metrics.inFlight.Add(-1)
		s.metrics.Observe(endpoint, sw.status, clock.Since(start))
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
