package serve

import (
	"context"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/drift"
	"repro/internal/faults"
	"repro/internal/measure"
	"repro/internal/modelstore"
	"repro/internal/obs"
)

// Config tunes the server. The zero value selects sensible defaults.
type Config struct {
	// Addr is the listen address (default ":8080").
	Addr string
	// ReplicaID is this server's shard identity in a multi-replica
	// deployment (varserve's -replica flag): the ID the cluster router
	// hashes onto its ring. Surfaced in /readyz and /v1/status so the
	// router (and humans) can confirm which replica answered. Empty
	// for single-instance serving.
	ReplicaID string
	// Workers bounds concurrent predictions (default GOMAXPROCS). A
	// request that cannot acquire a worker before its deadline gets 503.
	Workers int
	// RequestTimeout bounds each prediction (default 30s). A request
	// whose prediction outlives it gets 504.
	RequestTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// TraceBufferSize bounds the in-memory ring of completed request
	// traces served by GET /v1/traces (default 256).
	TraceBufferSize int
	// SlowTraceThreshold enables the slow-trace log: requests at or
	// above it are rendered to the process log as span trees. Zero
	// disables the log.
	SlowTraceThreshold time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (varserve's
	// -pprof flag). Off by default: profiling endpoints expose heap and
	// stack contents and belong behind an explicit opt-in.
	EnablePprof bool
	// ModelRegistry, when set, attaches a persistent model store to the
	// predictor (varserve's -modeldir flag): fitted models are persisted
	// and a restarted process loads them instead of refitting, so a warm
	// store serves its first prediction with no fit on the hot path.
	ModelRegistry *modelstore.Registry
	// Drift tunes the streaming-ingest drift detector and background
	// refit loop behind POST /v1/measurements (zero value = defaults).
	Drift drift.Config
	// IngestFaults, when set, routes every decoded measurement batch
	// through the streaming-batch fault injector (duplicate replay,
	// reordering, truncation) — the deterministic drill lever for the
	// ingest path. Production leaves it nil.
	IngestFaults *faults.BatchInjector
}

func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = ":8080"
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c
}

// Server is the varserve HTTP prediction service: routing, the bounded
// worker pool, metrics, and the cached predictor.
type Server struct {
	cfg     Config
	pred    *core.Predictor
	metrics *Metrics
	tracer  *obs.Tracer
	drift   *drift.Manager
	sem     chan struct{}
	ready   atomic.Bool
	mux     *http.ServeMux
	ln      net.Listener

	// ingestMu serializes the (not concurrency-safe) batch fault
	// injector and the per-cell batch sequence numbers behind it.
	ingestMu  sync.Mutex
	ingestSeq map[drift.Key]uint64
}

// New builds a server over a loaded measurement database.
func New(db *measure.Database, cfg Config) *Server {
	s := &Server{
		cfg:     cfg.withDefaults(),
		pred:    core.NewPredictor(db),
		metrics: NewMetrics(),
	}
	if s.cfg.ModelRegistry != nil {
		s.pred.SetModelStore(s.cfg.ModelRegistry)
	}
	s.tracer = obs.NewTracer(obs.Config{
		// Route through the package clock variable (not its current
		// value) so SetClock keeps traces deterministic in tests.
		Clock:         func() time.Time { return clock() },
		BufferSize:    s.cfg.TraceBufferSize,
		SlowThreshold: s.cfg.SlowTraceThreshold,
	})
	s.ingestSeq = map[drift.Key]uint64{}
	s.drift = drift.NewManager(s.cfg.Drift, drift.Hooks{
		// Route through the package clock variable like the tracer.
		Clock:    func() time.Time { return clock() },
		Tracer:   s.tracer,
		Baseline: s.driftBaseline,
		Refit:    s.refitCell,
	})
	s.sem = make(chan struct{}, s.cfg.Workers)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/measurements", s.instrument("POST /v1/measurements", s.handleMeasurements))
	s.mux.HandleFunc("POST /v1/predict/uc1", s.instrument("POST /v1/predict/uc1", s.handleUC1))
	s.mux.HandleFunc("POST /v1/predict/uc2", s.instrument("POST /v1/predict/uc2", s.handleUC2))
	s.mux.HandleFunc("POST /v1/predict/uc1/batch", s.instrument("POST /v1/predict/uc1/batch", s.handleUC1Batch))
	s.mux.HandleFunc("GET /v1/systems", s.instrument("GET /v1/systems", s.handleSystems))
	s.mux.HandleFunc("GET /v1/status", s.instrument("GET /v1/status", s.handleStatus))
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/metrics", s.instrument("GET /v1/metrics", s.handleObsMetrics))
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		// The process-global expvar set (the binary publishes the obs
		// registry there as "obs"); same sensitivity class as pprof —
		// it includes the command line — so it shares the gate.
		s.mux.Handle("GET /debug/vars", expvar.Handler())
	}
	s.ready.Store(true)
	return s
}

// Handler exposes the routing table (used directly by tests).
func (s *Server) Handler() http.Handler { return s.mux }

// Predictor exposes the cached predictor (warmup, cache statistics).
func (s *Server) Predictor() *core.Predictor { return s.pred }

// Metrics exposes the server's metrics set.
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer exposes the request tracer (trace buffer, slow-trace stats).
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Drift exposes the streaming-ingest drift manager (cell snapshots;
// Wait, the deterministic test barrier for background refits).
func (s *Server) Drift() *drift.Manager { return s.drift }

// Listen binds the configured address. Addr reports the bound address
// afterwards (useful with ":0").
func (s *Server) Listen() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("serve: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound listen address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the HTTP server until ctx is canceled, then drains
// gracefully: readiness flips to 503 (so load balancers stop routing)
// and in-flight requests get DrainTimeout to finish.
func (s *Server) Serve(ctx context.Context) error {
	if s.ln == nil {
		if err := s.Listen(); err != nil {
			return err
		}
	}
	hs := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	//lint:allow goroutinecheck process-lifetime listener goroutine joined via errc/Shutdown, not request work for the pool
	go func() { errc <- hs.Serve(s.ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: %w", err)
	case <-ctx.Done():
	}
	s.ready.Store(false)
	//lint:allow ctxflow drain deadline must outlive the already-canceled run ctx; Background is the correct root for shutdown
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := hs.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("serve: shutdown: %w", err)
	}
	return nil
}

// instrument wraps a handler with in-flight, latency, and status
// accounting, and roots a trace for the request: the handler (and the
// predictor underneath it) hang child spans off the request context,
// so every /v1/* request yields a handler -> predictor -> model span
// tree in the trace buffer.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := clock()
		s.metrics.inFlight.Add(1)
		ctx, span := s.tracer.Start(r.Context(), endpoint)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r.WithContext(ctx))
		span.SetAttr("status", strconv.Itoa(sw.status))
		span.End()
		s.metrics.inFlight.Add(-1)
		s.metrics.Observe(endpoint, sw.status, clock.Since(start))
	}
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
