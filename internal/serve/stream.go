package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// StreamOptions parameterizes a measurement-streaming run against a
// live varserve instance: the caller supplies the runs, the streamer
// cuts them into batches and posts them to POST /v1/measurements in
// order, watching the drift block of each response.
type StreamOptions struct {
	// URL is the server base URL, e.g. "http://127.0.0.1:8080".
	URL string
	// System and Benchmark name the target cell.
	System, Benchmark string
	// Runs is the full stream, posted in order.
	Runs []ProbeRun
	// BatchSize cuts Runs into POST bodies (default 16).
	BatchSize int
	// Timeout bounds each HTTP request (default 2m, matching the load
	// generator: ingest itself is fast but shares the server with
	// in-request training).
	Timeout time.Duration
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 16
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// StreamResult is the aggregate outcome of one measurement stream.
type StreamResult struct {
	Batches     int `json:"batches"`
	Accepted    int `json:"accepted"`
	Quarantined int `json:"quarantined"`
	// Rejected counts whole batches answered 422 (fully quarantined).
	Rejected int `json:"rejected"`
	// TrippedBatch is the 1-based batch whose response first reported
	// the detector tripped — the stream-side detection latency — and
	// RefitBatch the 1-based batch that first scheduled the background
	// refit. Zero means "never" in both.
	TrippedBatch int `json:"tripped_batch,omitempty"`
	RefitBatch   int `json:"refit_batch,omitempty"`
	// Final is the last response, i.e. the cell's state after the
	// whole stream landed.
	Final *MeasurementsResponse `json:"final,omitempty"`
}

// String renders the report the way cmd/varserve prints it.
func (r *StreamResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stream: %d batches -> %d accepted, %d quarantined (%d batches rejected)",
		r.Batches, r.Accepted, r.Quarantined, r.Rejected)
	if r.TrippedBatch > 0 {
		fmt.Fprintf(&b, "\n  drift tripped at batch %d", r.TrippedBatch)
		if r.RefitBatch > 0 {
			fmt.Fprintf(&b, ", refit scheduled at batch %d", r.RefitBatch)
		}
	}
	if r.Final != nil && r.Final.Drift != nil {
		d := r.Final.Drift
		fmt.Fprintf(&b, "\n  final: ks=%.3f w1=%.3f p=%.3g window=%d",
			d.KS, d.W1, d.PValue, r.Final.WindowFill)
	}
	return b.String()
}

// StreamMeasurements posts the runs to POST /v1/measurements batch by
// batch (sequentially — ingest order is the experiment variable) and
// reports how the drift detector responded. A 422 (fully-quarantined
// batch) is a valid outcome, counted in Rejected; any other non-2xx
// status aborts the stream with an error.
func StreamMeasurements(ctx context.Context, opts StreamOptions) (*StreamResult, error) {
	opts = opts.withDefaults()
	if opts.System == "" || opts.Benchmark == "" {
		return nil, fmt.Errorf("stream: system and benchmark are required")
	}
	if len(opts.Runs) == 0 {
		return nil, fmt.Errorf("stream: no runs to post")
	}
	client := &http.Client{Timeout: opts.Timeout}
	endpoint := strings.TrimRight(opts.URL, "/") + "/v1/measurements"
	res := &StreamResult{}
	for off := 0; off < len(opts.Runs); off += opts.BatchSize {
		end := off + opts.BatchSize
		if end > len(opts.Runs) {
			end = len(opts.Runs)
		}
		mr, status, err := streamOnce(ctx, client, endpoint, MeasurementsRequest{
			System:    opts.System,
			Benchmark: opts.Benchmark,
			Runs:      opts.Runs[off:end],
		})
		if err != nil {
			return nil, err
		}
		res.Batches++
		res.Accepted += mr.Accepted
		res.Quarantined += mr.Quarantined
		if status == http.StatusUnprocessableEntity {
			res.Rejected++
		}
		if mr.Drift != nil {
			if mr.Drift.Tripped && res.TrippedBatch == 0 {
				res.TrippedBatch = res.Batches
			}
			if mr.Drift.RefitScheduled && res.RefitBatch == 0 {
				res.RefitBatch = res.Batches
			}
		}
		res.Final = mr
	}
	return res, nil
}

// streamOnce posts one measurement batch and decodes the response.
// 200 and 422 both carry a MeasurementsResponse; anything else is an
// error.
func streamOnce(ctx context.Context, client *http.Client, endpoint string, body MeasurementsRequest) (*MeasurementsResponse, int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(buf))
	if err != nil {
		return nil, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, 0, fmt.Errorf("stream: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusUnprocessableEntity {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, resp.StatusCode, fmt.Errorf("stream: %s: %s", resp.Status, msg)
	}
	var mr MeasurementsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		return nil, resp.StatusCode, fmt.Errorf("stream: decode: %w", err)
	}
	return &mr, resp.StatusCode, nil
}
