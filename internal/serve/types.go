package serve

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/distrep"
	"repro/internal/perfsim"
)

// ProbeRun is one caller-supplied probe execution: wall time plus raw
// perf-counter totals aligned with the system's metric schema (exactly
// what `perf stat` emits, see GET /v1/systems for the metric names).
type ProbeRun struct {
	Seconds float64   `json:"seconds"`
	Metrics []float64 `json:"metrics"`
}

// PredictRequest is the JSON body of both prediction endpoints. Exactly
// one of Benchmark (predict a database benchmark, holding it out of
// training, with ground truth attached) or ProbeRuns (predict an unseen
// application from its raw probe profile) must be set.
type PredictRequest struct {
	// System names the UC1 system.
	System string `json:"system,omitempty"`
	// Source and Target name the UC2 system pair.
	Source string `json:"source,omitempty"`
	Target string `json:"target,omitempty"`

	// Benchmark is a "suite/name" ID from the measurement database.
	Benchmark string `json:"benchmark,omitempty"`
	// ProbeRuns is a raw probe profile of an application not in the
	// database. For UC2 it must be accompanied by SourceRelTimes.
	ProbeRuns []ProbeRun `json:"probe_runs,omitempty"`
	// SourceRelTimes is the application's measured relative-time sample
	// on the source system (UC2 raw-profile requests only).
	SourceRelTimes []float64 `json:"source_rel_times,omitempty"`

	// Model is knn (default) | rf | xgboost | ridge.
	Model string `json:"model,omitempty"`
	// Representation is pearsonrnd (default) | histogram | pymaxent | quantile.
	Representation string `json:"representation,omitempty"`
	// Samples is the UC1 profile size (default 10, the paper's setting).
	Samples int `json:"samples,omitempty"`
	// Bins is the histogram representation's bin count (0 = default 50).
	Bins int `json:"bins,omitempty"`
	// Seed drives decoding and model stochasticity (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// N is the number of samples to decode for raw-profile requests
	// (default: the database's runs-per-benchmark).
	N int `json:"n,omitempty"`
}

// BatchPredictRequest is the JSON body of POST /v1/predict/uc1/batch:
// one shared model/representation configuration applied to many raw
// probe profiles at once. All profiles are scored by the same cached
// deployment model, and the predictions fan out across the server's
// worker pool.
type BatchPredictRequest struct {
	// System names the UC1 system.
	System string `json:"system"`
	// Profiles holds one raw probe profile per application to predict.
	Profiles [][]ProbeRun `json:"profiles"`

	// Model is knn (default) | rf | xgboost | ridge.
	Model string `json:"model,omitempty"`
	// Representation is pearsonrnd (default) | histogram | pymaxent | quantile.
	Representation string `json:"representation,omitempty"`
	// Samples is the UC1 profile size (default 10, the paper's setting).
	Samples int `json:"samples,omitempty"`
	// Bins is the histogram representation's bin count (0 = default 50).
	Bins int `json:"bins,omitempty"`
	// Seed drives decoding and model stochasticity (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// N is the number of samples to decode per profile (default: the
	// database's runs-per-benchmark).
	N int `json:"n,omitempty"`
}

// BatchResultJSON summarizes one profile's predicted distribution.
type BatchResultJSON struct {
	N         int                `json:"n"`
	Quantiles map[string]float64 `json:"quantiles"`
	Histogram *HistogramJSON     `json:"histogram"`
	Moments   MomentsJSON        `json:"moments"`
	Modes     int                `json:"modes"`
}

// BatchPredictResponse is the JSON body of a successful batch
// prediction; Results is aligned with the request's Profiles.
type BatchPredictResponse struct {
	UseCase        int               `json:"use_case"`
	System         string            `json:"system"`
	Model          string            `json:"model"`
	Representation string            `json:"representation"`
	Seed           uint64            `json:"seed"`
	Count          int               `json:"count"`
	Results        []BatchResultJSON `json:"results"`
	Cache          string            `json:"cache"`
	ElapsedMS      float64           `json:"elapsed_ms"`

	// Degraded and Fallback mirror PredictResponse: the whole batch is
	// served by one model, so they apply to every result.
	Degraded bool   `json:"degraded,omitempty"`
	Fallback string `json:"fallback,omitempty"`
}

// HistogramJSON is a fixed-support histogram of the predicted sample.
type HistogramJSON struct {
	Lo       float64   `json:"lo"`
	Hi       float64   `json:"hi"`
	BinWidth float64   `json:"bin_width"`
	Density  []float64 `json:"density"`
}

// MomentsJSON carries the first four moments of a sample.
type MomentsJSON struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Skew float64 `json:"skew"`
	Kurt float64 `json:"kurt"`
}

// MeasuredJSON summarizes the ground-truth sample when one exists.
type MeasuredJSON struct {
	N       int         `json:"n"`
	Moments MomentsJSON `json:"moments"`
	Modes   int         `json:"modes"`
}

// PredictResponse is the JSON body of a successful prediction.
type PredictResponse struct {
	UseCase        int    `json:"use_case"`
	System         string `json:"system,omitempty"`
	Source         string `json:"source,omitempty"`
	Target         string `json:"target,omitempty"`
	Benchmark      string `json:"benchmark,omitempty"`
	Model          string `json:"model"`
	Representation string `json:"representation"`
	Seed           uint64 `json:"seed"`
	N              int    `json:"n"`

	Quantiles map[string]float64 `json:"quantiles"`
	Histogram *HistogramJSON     `json:"histogram"`
	Moments   MomentsJSON        `json:"moments"`
	Modes     int                `json:"modes"`

	// KSVsMeasured and W1VsMeasured score the prediction against the
	// measured ground truth; present only for Benchmark requests.
	KSVsMeasured *float64      `json:"ks_vs_measured,omitempty"`
	W1VsMeasured *float64      `json:"w1_vs_measured,omitempty"`
	Measured     *MeasuredJSON `json:"measured,omitempty"`

	// Cache is "hit" when the fitted model was reused, "miss" when this
	// request trained it.
	Cache     string  `json:"cache"`
	ElapsedMS float64 `json:"elapsed_ms"`

	// Degraded is true when the primary model's fit failed (or its
	// breaker is open) and a fallback answered; Fallback names the path
	// ("stale" or "knn").
	Degraded bool   `json:"degraded,omitempty"`
	Fallback string `json:"fallback,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
// TracesResponse is the GET /v1/traces payload: lifetime completion
// counters plus the buffered traces rendered as indented span trees,
// oldest first.
type TracesResponse struct {
	Completed uint64   `json:"completed"`
	Slow      uint64   `json:"slow"`
	Traces    []string `json:"traces,omitempty"`
}

type ErrorResponse struct {
	Error string `json:"error"`
	Code  int    `json:"code"`
}

// StatusResponse is the JSON body of GET /v1/status: the server's
// robustness posture — breaker states, degraded-serving counters, and
// the ingest-validation quarantine summary per system.
type StatusResponse struct {
	// Status is "ok", or "degraded" when any breaker is open.
	Status string `json:"status"`
	// ReplicaID is the server's shard identity when it runs as a
	// cluster replica (varserve -replica); empty otherwise.
	ReplicaID string `json:"replica,omitempty"`
	// BreakersOpen counts breakers open right now; StaleServed and
	// KNNServed count predictions answered by each fallback path.
	BreakersOpen int    `json:"breakers_open"`
	StaleServed  uint64 `json:"stale_served"`
	KNNServed    uint64 `json:"knn_served"`
	// Breakers lists every fit breaker the predictor has created.
	Breakers []BreakerJSON `json:"breakers,omitempty"`
	// Quarantine summarizes ingest validation per system (only systems
	// whose datasets have been assembled appear).
	Quarantine []QuarantineJSON `json:"quarantine,omitempty"`
	// ModelStore reports the persistent model registry (absent when the
	// server runs without -modeldir).
	ModelStore *ModelStoreJSON `json:"model_store,omitempty"`
	// Drift reports the streaming-ingest cells (absent until the first
	// POST /v1/measurements creates one).
	Drift *DriftStatusJSON `json:"drift,omitempty"`
}

// DriftStatusJSON is the streaming-ingest posture in GET /v1/status.
type DriftStatusJSON struct {
	// Drifted counts cells currently tripped (drifted or refitting).
	Drifted int `json:"drifted"`
	// Cells lists every ingest cell, sorted by name.
	Cells []DriftCellJSON `json:"cells"`
}

// DriftCellJSON is one ingest cell's drift state.
type DriftCellJSON struct {
	// Cell is "system/suite/bench"; State is filling | fresh |
	// drifted | refitting.
	Cell  string `json:"cell"`
	State string `json:"state"`
	// WindowFill of WindowCap recent runs are held; BaselineN is the
	// training-baseline size the window is compared against.
	WindowFill int `json:"window_fill"`
	WindowCap  int `json:"window_cap"`
	BaselineN  int `json:"baseline_n"`
	// Ingest counters across all batches of this cell.
	Ingested    int            `json:"ingested"`
	Accepted    int            `json:"accepted"`
	Quarantined int            `json:"quarantined"`
	Repaired    int            `json:"repaired,omitempty"`
	ByClass     map[string]int `json:"by_class,omitempty"`
	// Detector state: KS/W1/PValue are the last evaluation (absent
	// before the window reaches its minimum fill).
	Evals    int      `json:"evals"`
	KS       *float64 `json:"ks,omitempty"`
	W1       *float64 `json:"w1,omitempty"`
	PValue   *float64 `json:"p_value,omitempty"`
	Breaches int      `json:"breaches"`
	Trips    int      `json:"trips"`
	// Refit-loop counters; LastRefitAgeMS is the staleness gauge
	// (absent until the first successful refit).
	RefitOK        int     `json:"refit_ok"`
	RefitFail      int     `json:"refit_fail"`
	RefitShed      int     `json:"refit_shed"`
	LastRefitAgeMS float64 `json:"last_refit_age_ms,omitempty"`
}

// MeasurementsRequest is the JSON body of POST /v1/measurements: one
// batch of freshly measured runs for a (system, benchmark) cell of
// the database. Runs flow through ingest validation (quarantine) and
// the survivors feed the drift detector's window.
type MeasurementsRequest struct {
	// System and Benchmark name the cell; both must already exist in
	// the database (ingest extends distributions, it does not create
	// benchmarks).
	System    string `json:"system"`
	Benchmark string `json:"benchmark"`
	// Runs is the measurement batch, schema-aligned with the system's
	// metric names (GET /v1/systems).
	Runs []ProbeRun `json:"runs"`
}

// MeasurementsResponse reports a batch's ingest outcome. Status 200
// means at least one run survived validation; 422 carries the same
// shape (with Error set) when the whole batch was quarantined.
type MeasurementsResponse struct {
	System    string `json:"system"`
	Benchmark string `json:"benchmark"`
	// Accepted runs entered the window; Quarantined were dropped (and
	// ByClass says why); Repaired counts accepted runs that needed
	// counter repair.
	Accepted    int            `json:"accepted"`
	Quarantined int            `json:"quarantined"`
	Repaired    int            `json:"repaired,omitempty"`
	ByClass     map[string]int `json:"by_class,omitempty"`
	// WindowFill is the cell's ring fill after this batch.
	WindowFill int `json:"window_fill"`
	// Drift carries the detector outcome when the window was large
	// enough to evaluate.
	Drift *DriftEvalJSON `json:"drift,omitempty"`
	// Error is set on 422 (fully-unusable batch).
	Error     string  `json:"error,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// DriftEvalJSON is one drift evaluation, attached to the ingest
// response that triggered it.
type DriftEvalJSON struct {
	KS       float64 `json:"ks"`
	W1       float64 `json:"w1"`
	PValue   float64 `json:"p_value"`
	Breaches int     `json:"breaches"`
	Tripped  bool    `json:"tripped"`
	// RefitScheduled is true when this batch queued the background
	// refit.
	RefitScheduled bool `json:"refit_scheduled,omitempty"`
}

// ModelStoreJSON is the model registry's posture in GET /v1/status.
type ModelStoreJSON struct {
	// Hits were served from memory, DiskHits loaded from the store
	// directory, Misses fitted (and persisted).
	Hits     uint64 `json:"hits"`
	DiskHits uint64 `json:"disk_hits"`
	Misses   uint64 `json:"misses"`
	// Evictions counts models dropped past the residency bound,
	// Refreshes background atomic swaps.
	Evictions uint64 `json:"evictions"`
	Refreshes uint64 `json:"refreshes"`
	// LoadErrors counts rejected files (corrupt/version-skewed/
	// fingerprint-mismatched), SaveErrors failed persists.
	LoadErrors uint64 `json:"load_errors"`
	SaveErrors uint64 `json:"save_errors"`
	// Resident of MaxResident models are in memory right now.
	Resident    int `json:"resident"`
	MaxResident int `json:"max_resident"`
}

// BreakerJSON is one fit breaker's state.
type BreakerJSON struct {
	Key          string  `json:"key"`
	Open         bool    `json:"open"`
	Failures     int     `json:"failures"`
	Trips        int     `json:"trips"`
	RetryAfterMS float64 `json:"retry_after_ms,omitempty"`
	LastError    string  `json:"last_error,omitempty"`
}

// QuarantineJSON is one system's ingest-validation summary.
type QuarantineJSON struct {
	System            string `json:"system"`
	RunsTotal         int    `json:"runs_total"`
	RunsQuarantined   int    `json:"runs_quarantined"`
	RunsRepaired      int    `json:"runs_repaired"`
	ProbesTotal       int    `json:"probes_total"`
	ProbesQuarantined int    `json:"probes_quarantined"`
	// ByClass counts defects by fault class across both run sets.
	ByClass map[string]int `json:"by_class,omitempty"`
	// UnusableBenchmarks lists benchmarks excluded from training.
	UnusableBenchmarks []string `json:"unusable_benchmarks,omitempty"`
}

// SystemsResponse describes the loaded measurement database.
type SystemsResponse struct {
	RunsPerBenchmark      int          `json:"runs_per_benchmark"`
	ProbeRunsPerBenchmark int          `json:"probe_runs_per_benchmark"`
	Systems               []SystemJSON `json:"systems"`
}

// SystemJSON describes one system in the database.
type SystemJSON struct {
	Name        string   `json:"name"`
	MetricNames []string `json:"metric_names"`
	Benchmarks  []string `json:"benchmarks"`
}

// parseModel resolves the request's model name ("" = the paper's kNN).
func parseModel(name string) (core.Model, error) {
	switch strings.ToLower(name) {
	case "", "knn":
		return core.KNN, nil
	case "rf", "randomforest", "forest":
		return core.RandomForest, nil
	case "xgboost", "xgb":
		return core.XGBoost, nil
	case "ridge", "linear":
		return core.Ridge, nil
	default:
		return 0, fmt.Errorf("unknown model %q (want knn, rf, xgboost, or ridge)", name)
	}
}

// parseRep resolves the request's representation name ("" = the
// paper's best, PearsonRnd).
func parseRep(name string) (distrep.Kind, error) {
	switch strings.ToLower(name) {
	case "", "pearsonrnd", "pearson":
		return distrep.PearsonRnd, nil
	case "histogram", "hist":
		return distrep.Histogram, nil
	case "pymaxent", "maxent":
		return distrep.MaxEnt, nil
	case "quantile":
		return distrep.Quantile, nil
	default:
		return 0, fmt.Errorf("unknown representation %q (want pearsonrnd, histogram, pymaxent, or quantile)", name)
	}
}

// probeRuns converts the wire probe profile into simulator runs.
func (r *PredictRequest) probeRuns() []perfsim.Run { return toRuns(r.ProbeRuns) }

// toRuns converts one wire probe profile into simulator runs.
func toRuns(prs []ProbeRun) []perfsim.Run {
	runs := make([]perfsim.Run, len(prs))
	for i, pr := range prs {
		runs[i] = perfsim.Run{Seconds: pr.Seconds, Metrics: pr.Metrics}
	}
	return runs
}
