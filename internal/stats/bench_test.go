package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSample(n int) []float64 {
	rng := rand.New(rand.NewPCG(1, 2))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func BenchmarkComputeMoments4(b *testing.B) {
	xs := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ComputeMoments4(xs)
	}
}

func BenchmarkKSStatistic1000(b *testing.B) {
	xs := benchSample(1000)
	ys := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KSStatistic(xs, ys)
	}
}

func BenchmarkWasserstein1(b *testing.B) {
	xs := benchSample(1000)
	ys := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Wasserstein1(xs, ys)
	}
}

func BenchmarkAndersonDarling(b *testing.B) {
	xs := benchSample(1000)
	ys := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AndersonDarling(xs, ys)
	}
}

func BenchmarkKDEEvaluate(b *testing.B) {
	xs := benchSample(1000)
	k := NewKDE(xs)
	grid := make([]float64, 256)
	for i := range grid {
		grid[i] = -4 + 8*float64(i)/255
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Evaluate(grid)
	}
}

func BenchmarkKDECountModes(b *testing.B) {
	xs := benchSample(1000)
	k := NewKDE(xs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.CountModes(512, 0.1)
	}
}

func BenchmarkHistogramFromSample(b *testing.B) {
	xs := benchSample(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HistogramFromSample(xs, -4, 4, 50)
	}
}

func BenchmarkQuantiles(b *testing.B) {
	xs := benchSample(1000)
	qs := []float64{0.01, 0.25, 0.5, 0.75, 0.95, 0.99}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Quantiles(xs, qs)
	}
}
