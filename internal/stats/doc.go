// Package stats implements the descriptive statistics the paper's
// workflow relies on: moments (through kurtosis), quantiles, empirical
// CDFs, histograms, kernel density estimates, and the two-sample
// Kolmogorov–Smirnov and Wasserstein-1 distances used to score
// predicted distributions against measured ground truth.
//
// It replaces the NumPy/SciPy statistical substrate of the original
// Python implementation. Summation goes through numeric.Sum
// (compensated) so results do not drift with evaluation order, and the
// floatcheck analyzer polices the NaN discipline at the package
// boundary.
package stats
