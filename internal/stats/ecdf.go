package stats

import (
	"math"
	"sort"
)

// ECDF is an empirical cumulative distribution function built from a
// sample. The zero value is unusable; construct with NewECDF.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF from xs (copied and sorted).
func NewECDF(xs []float64) *ECDF {
	if len(xs) == 0 {
		panic("stats: NewECDF of empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// At returns F(x) = P(X <= x), a step function in [0, 1].
func (e *ECDF) At(x float64) float64 {
	// Index of first element > x.
	i := sort.Search(len(e.sorted), func(k int) bool { return e.sorted[k] > x })
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Sorted returns the underlying sorted sample (shared, do not mutate).
func (e *ECDF) Sorted() []float64 { return e.sorted }

// KSStatistic computes the two-sample Kolmogorov–Smirnov statistic
// D = sup_x |F1(x) - F2(x)| between samples a and b. This is the accuracy
// score the paper uses to compare predicted and measured distributions:
// 0 is a perfect match, 1 is maximal divergence.
//
// The merge-based implementation is exact and runs in O(n log n).
func KSStatistic(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: KSStatistic needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	na, nb := float64(len(sa)), float64(len(sb))
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	return d
}

// KSPValue returns the asymptotic two-sided p-value for a two-sample KS
// statistic d with sample sizes n and m, using the Kolmogorov limiting
// distribution Q(λ) = 2·Σ_{k>=1} (-1)^{k-1} e^{-2k²λ²}.
func KSPValue(d float64, n, m int) float64 {
	if d <= 0 {
		return 1
	}
	if d >= 1 {
		return 0
	}
	ne := float64(n) * float64(m) / float64(n+m)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return p
}

// KSAgainstCDF computes the one-sample KS statistic between sample xs and
// a reference CDF evaluated by cdf. Used in tests to validate samplers
// against analytic distributions.
func KSAgainstCDF(xs []float64, cdf func(float64) float64) float64 {
	if len(xs) == 0 {
		panic("stats: KSAgainstCDF needs a non-empty sample")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := float64(len(s))
	var d float64
	for i, x := range s {
		f := cdf(x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	return d
}

// Wasserstein1 computes the 1-Wasserstein (earth mover's) distance
// between two equal-weight samples. It complements the KS statistic in
// our extended evaluation: KS is sup-norm, W1 is area between CDFs.
func Wasserstein1(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: Wasserstein1 needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	// Integrate |F_a - F_b| over the merged support.
	na, nb := float64(len(sa)), float64(len(sb))
	i, j := 0, 0
	var prev float64
	first := true
	var dist, fa, fb float64
	for i < len(sa) || j < len(sb) {
		var x float64
		switch {
		case i >= len(sa):
			x = sb[j]
		case j >= len(sb):
			x = sa[i]
		default:
			x = math.Min(sa[i], sb[j])
		}
		if !first {
			dist += math.Abs(fa-fb) * (x - prev)
		}
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		fa, fb = float64(i)/na, float64(j)/nb
		prev, first = x, false
	}
	return dist
}
