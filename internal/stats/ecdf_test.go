package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestECDFBasic(t *testing.T) {
	e := NewECDF([]float64{3, 1, 2})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 1.0 / 3}, {1.5, 1.0 / 3}, {2, 2.0 / 3}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); !almostEqual(got, c.want, 1e-14) {
			t.Errorf("ECDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if e.Len() != 3 {
		t.Errorf("Len = %d, want 3", e.Len())
	}
}

func TestECDFTies(t *testing.T) {
	e := NewECDF([]float64{2, 2, 2, 5})
	if got := e.At(2); !almostEqual(got, 0.75, 1e-14) {
		t.Errorf("ECDF at tie = %v, want 0.75", got)
	}
}

func TestECDFMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 32))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	e := NewECDF(xs)
	prev := -1.0
	for x := -4.0; x <= 4.0; x += 0.05 {
		f := e.At(x)
		if f < prev {
			t.Fatalf("ECDF decreased at %v", x)
		}
		if f < 0 || f > 1 {
			t.Fatalf("ECDF(%v) = %v outside [0,1]", x, f)
		}
		prev = f
	}
}

func TestKSIdenticalSamples(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := KSStatistic(xs, xs); got != 0 {
		t.Errorf("KS of identical samples = %v, want 0", got)
	}
}

func TestKSDisjointSamples(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if got := KSStatistic(a, b); got != 1 {
		t.Errorf("KS of disjoint samples = %v, want 1", got)
	}
}

func TestKSKnownValue(t *testing.T) {
	// a = {1,2,3,4}, b = {3,4,5,6}: max CDF gap is at x in [2,3): F_a=0.5, F_b=0 -> D=0.5.
	a := []float64{1, 2, 3, 4}
	b := []float64{3, 4, 5, 6}
	if got := KSStatistic(a, b); !almostEqual(got, 0.5, 1e-14) {
		t.Errorf("KS = %v, want 0.5", got)
	}
}

func TestKSSymmetric(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 42))
	for trial := 0; trial < 20; trial++ {
		na, nb := 5+rng.IntN(100), 5+rng.IntN(100)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() + 0.5
		}
		if d1, d2 := KSStatistic(a, b), KSStatistic(b, a); !almostEqual(d1, d2, 1e-14) {
			t.Fatalf("KS not symmetric: %v vs %v", d1, d2)
		}
	}
}

func TestKSMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(51, 52))
	for trial := 0; trial < 30; trial++ {
		na, nb := 2+rng.IntN(30), 2+rng.IntN(30)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = math.Round(rng.NormFloat64()*4) / 2 // induce ties
		}
		for i := range b {
			b[i] = math.Round(rng.NormFloat64()*4) / 2
		}
		got := KSStatistic(a, b)
		// Brute force: evaluate |F_a - F_b| at every sample point.
		ea, eb := NewECDF(a), NewECDF(b)
		var want float64
		for _, x := range append(append([]float64(nil), a...), b...) {
			if d := math.Abs(ea.At(x) - eb.At(x)); d > want {
				want = d
			}
		}
		if !almostEqual(got, want, 1e-12) {
			t.Fatalf("trial %d: KS = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestKSSameDistributionSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(61, 62))
	a := make([]float64, 2000)
	b := make([]float64, 2000)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	if d := KSStatistic(a, b); d > 0.08 {
		t.Errorf("KS of two big same-distribution samples = %v, expected small", d)
	}
}

func TestKSPValueRange(t *testing.T) {
	if p := KSPValue(0, 100, 100); p != 1 {
		t.Errorf("p(0) = %v, want 1", p)
	}
	if p := KSPValue(1, 100, 100); p != 0 {
		t.Errorf("p(1) = %v, want 0", p)
	}
	p1 := KSPValue(0.05, 1000, 1000)
	p2 := KSPValue(0.2, 1000, 1000)
	if !(p1 > p2) {
		t.Errorf("p-value should decrease with D: p(0.05)=%v p(0.2)=%v", p1, p2)
	}
	if p1 < 0 || p1 > 1 || p2 < 0 || p2 > 1 {
		t.Errorf("p-values out of range: %v %v", p1, p2)
	}
}

func TestKSAgainstCDFNormal(t *testing.T) {
	rng := rand.New(rand.NewPCG(71, 72))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	cdf := func(x float64) float64 { return 0.5 * (1 + math.Erf(x/math.Sqrt2)) }
	if d := KSAgainstCDF(xs, cdf); d > 0.02 {
		t.Errorf("one-sample KS vs true CDF = %v, expected < 0.02", d)
	}
	// Against the wrong CDF, the distance should be large.
	wrong := func(x float64) float64 { return 0.5 * (1 + math.Erf((x-1)/math.Sqrt2)) }
	if d := KSAgainstCDF(xs, wrong); d < 0.3 {
		t.Errorf("one-sample KS vs shifted CDF = %v, expected > 0.3", d)
	}
}

func TestWasserstein1Known(t *testing.T) {
	// Point masses at 0 and at 1: W1 = 1.
	if got := Wasserstein1([]float64{0, 0}, []float64{1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("W1 = %v, want 1", got)
	}
	// Identical samples: W1 = 0.
	xs := []float64{1, 5, 9}
	if got := Wasserstein1(xs, xs); got != 0 {
		t.Errorf("W1 of identical = %v, want 0", got)
	}
	// Shift by c shifts W1 by exactly c for equal-size samples.
	a := []float64{1, 2, 3, 4}
	b := []float64{1.5, 2.5, 3.5, 4.5}
	if got := Wasserstein1(a, b); !almostEqual(got, 0.5, 1e-12) {
		t.Errorf("W1 of shifted = %v, want 0.5", got)
	}
}

func TestWasserstein1Symmetric(t *testing.T) {
	a := []float64{0, 1, 3}
	b := []float64{2, 2, 5, 7}
	if d1, d2 := Wasserstein1(a, b), Wasserstein1(b, a); !almostEqual(d1, d2, 1e-12) {
		t.Errorf("W1 not symmetric: %v vs %v", d1, d2)
	}
}
