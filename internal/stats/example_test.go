package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// ExampleKSStatistic scores the agreement of two samples the way the
// paper scores predicted distributions against measured ones.
func ExampleKSStatistic() {
	measured := []float64{0.98, 0.99, 1.00, 1.01, 1.02}
	predicted := []float64{0.98, 0.99, 1.00, 1.01, 1.02}
	fmt.Printf("identical: %.2f\n", stats.KSStatistic(measured, predicted))

	shifted := []float64{1.08, 1.09, 1.10, 1.11, 1.12}
	fmt.Printf("disjoint:  %.2f\n", stats.KSStatistic(measured, shifted))
	// Output:
	// identical: 0.00
	// disjoint:  1.00
}

// ExampleComputeMoments4 extracts the four moments the prediction models
// regress.
func ExampleComputeMoments4() {
	rel := []float64{0.95, 0.97, 1.0, 1.03, 1.05}
	m := stats.ComputeMoments4(rel)
	fmt.Printf("mean=%.2f std=%.3f skew=%.2f\n", m.Mean, m.Std, m.Skew)
	// Output:
	// mean=1.00 std=0.041 skew=0.00
}

// ExampleNormalize converts absolute run times to the paper's
// "relative time" (normalized to the mean).
func ExampleNormalize() {
	seconds := []float64{95, 100, 105}
	fmt.Println(stats.Normalize(seconds))
	// Output:
	// [0.95 1 1.05]
}
