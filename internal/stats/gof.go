package stats

import (
	"math"
	"sort"
)

// This file provides goodness-of-fit statistics beyond the paper's
// Kolmogorov–Smirnov score. They back the extension experiment asking
// whether the paper's conclusions (which representation and model win)
// are artifacts of the KS metric or hold under other divergences.

// AndersonDarling computes the two-sample Anderson–Darling statistic
// A² (Pettitt's form, without the small-sample continuity corrections).
// Relative to KS it up-weights disagreement in the distribution tails —
// exactly where performance-variability analyses care most.
func AndersonDarling(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: AndersonDarling needs non-empty samples")
	}
	n, m := len(a), len(b)
	total := n + m
	type tagged struct {
		v    float64
		from int // 0 = a, 1 = b
	}
	all := make([]tagged, 0, total)
	for _, v := range a {
		all = append(all, tagged{v, 0})
	}
	for _, v := range b {
		all = append(all, tagged{v, 1})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v < all[j].v })
	// A² = (1/(n m)) Σ_{k=1..N-1} (M_k·N − k·n)² / (k·(N−k)),
	// with M_k the count of a-values among the k smallest.
	var sum float64
	mk := 0
	for k := 1; k < total; k++ {
		if all[k-1].from == 0 {
			mk++
		}
		d := float64(mk*total - k*n)
		sum += d * d / float64(k*(total-k))
	}
	return sum / float64(n*m)
}

// CramerVonMises computes the two-sample Cramér–von Mises criterion T,
// an L2 distance between the empirical CDFs. It weighs the body of the
// distributions more evenly than KS's sup-norm.
func CramerVonMises(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: CramerVonMises needs non-empty samples")
	}
	n, m := float64(len(a)), float64(len(b))
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	// Ranks of each sample in the combined ordering.
	combined := append(append([]float64(nil), sa...), sb...)
	sort.Float64s(combined)
	rank := func(v float64) float64 {
		// Average rank across ties in the combined sample (1-based).
		lo := sort.SearchFloat64s(combined, v)
		hi := sort.Search(len(combined), func(i int) bool { return combined[i] > v })
		return float64(lo+hi+1) / 2
	}
	var u float64
	for i, v := range sa {
		dd := rank(v) - float64(i+1)
		u += dd * dd
	}
	uA := u * n
	u = 0
	for j, v := range sb {
		dd := rank(v) - float64(j+1)
		u += dd * dd
	}
	uB := u * m
	nm := n * m
	t := (uA + uB) / (nm * (n + m))
	return t - (4*nm-1)/(6*(n+m))
}

// EnergyDistance computes the (squared) energy distance
// 2·E|X−Y| − E|X−X'| − E|Y−Y'| between two samples using the
// closed-form expression over sorted samples. It is a proper metric on
// distributions and serves as a third cross-check divergence.
func EnergyDistance(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		panic("stats: EnergyDistance needs non-empty samples")
	}
	sa := append([]float64(nil), a...)
	sb := append([]float64(nil), b...)
	sort.Float64s(sa)
	sort.Float64s(sb)
	meanPairwiseCross := crossMeanAbs(sa, sb)
	d := 2*meanPairwiseCross - meanPairwiseWithin(sa) - meanPairwiseWithin(sb)
	if d < 0 {
		d = 0 // numeric guard; the population quantity is non-negative
	}
	return d
}

// meanPairwiseWithin computes E|X−X'| for a sorted sample in O(n).
func meanPairwiseWithin(sorted []float64) float64 {
	n := len(sorted)
	if n < 2 {
		return 0
	}
	// Σ_{i<j}(x_j − x_i) = Σ_j x_j·(2j−n+1) over 0-based j.
	var s float64
	for j, v := range sorted {
		s += v * float64(2*j-n+1)
	}
	return 2 * s / float64(n*n)
}

// crossMeanAbs computes E|X−Y| for sorted samples in O(n+m).
func crossMeanAbs(sa, sb []float64) float64 {
	// For each element of sa, sum |v − y| over sb using prefix sums.
	prefix := make([]float64, len(sb)+1)
	for i, v := range sb {
		prefix[i+1] = prefix[i] + v
	}
	totalB := prefix[len(sb)]
	var s float64
	for _, v := range sa {
		k := sort.SearchFloat64s(sb, v)
		below := prefix[k]
		s += v*float64(k) - below + (totalB - below) - v*float64(len(sb)-k)
	}
	return s / float64(len(sa)*len(sb))
}

// BootstrapMeanCI returns a percentile bootstrap confidence interval for
// the mean of xs at the given confidence level (e.g. 0.95), using
// nResamples bootstrap replicates drawn with the provided uniform
// source. This is the resampling machinery behind the adaptive
// measurement-stopping rule (Maricq et al., cited by the paper).
func BootstrapMeanCI(xs []float64, confidence float64, nResamples int, uniform func() float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapMeanCI of empty sample")
	}
	if confidence <= 0 || confidence >= 1 {
		panic("stats: confidence must be in (0,1)")
	}
	if nResamples < 10 {
		nResamples = 10
	}
	means := make([]float64, nResamples)
	n := len(xs)
	for r := range means {
		var s float64
		for i := 0; i < n; i++ {
			s += xs[int(uniform()*float64(n))]
		}
		means[r] = s / float64(n)
	}
	alpha := (1 - confidence) / 2
	qs := Quantiles(means, []float64{alpha, 1 - alpha})
	return qs[0], qs[1]
}

// HalfWidthRel returns the half-width of [lo, hi] relative to the
// midpoint magnitude; NaN-free for a zero midpoint.
func HalfWidthRel(lo, hi float64) float64 {
	mid := (lo + hi) / 2
	if mid == 0 {
		return math.Inf(1)
	}
	return math.Abs(hi-lo) / 2 / math.Abs(mid)
}
