package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func twoSamples(seed uint64, n int, shift float64) (a, b []float64) {
	rng := rand.New(rand.NewPCG(seed, seed^0xDEAD))
	a = make([]float64, n)
	b = make([]float64, n)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64() + shift
	}
	return a, b
}

func TestAndersonDarlingSameVsShifted(t *testing.T) {
	a, same := twoSamples(1, 3000, 0)
	_, shifted := twoSamples(2, 3000, 0.5)
	adSame := AndersonDarling(a, same)
	adShift := AndersonDarling(a, shifted)
	if adShift < 10*adSame {
		t.Errorf("AD not discriminating: same=%v shifted=%v", adSame, adShift)
	}
	if adSame < 0 {
		t.Errorf("AD of similar samples = %v, want >= 0", adSame)
	}
}

func TestAndersonDarlingTailSensitivity(t *testing.T) {
	// Two distributions equal in the body, different in the tail: AD
	// should flag them more strongly (relative to its same-distribution
	// level) than a body-only perturbation of the same KS size.
	rng := rand.New(rand.NewPCG(3, 4))
	n := 5000
	base := make([]float64, n)
	tailed := make([]float64, n)
	for i := range base {
		base[i] = rng.NormFloat64()
		v := rng.NormFloat64()
		if rng.Float64() < 0.02 {
			v += 6 // rare large excursion
		}
		tailed[i] = v
	}
	if ad := AndersonDarling(base, tailed); ad < 1 {
		t.Errorf("AD = %v, want to clearly flag a 2%% tail", ad)
	}
}

func TestCramerVonMisesBasics(t *testing.T) {
	a, same := twoSamples(5, 2000, 0)
	_, shifted := twoSamples(6, 2000, 0.4)
	tSame := CramerVonMises(a, same)
	tShift := CramerVonMises(a, shifted)
	if tShift < 10*math.Abs(tSame)+0.5 {
		t.Errorf("CvM not discriminating: same=%v shifted=%v", tSame, tShift)
	}
	// Symmetric in its arguments.
	if d1, d2 := CramerVonMises(a, shifted), CramerVonMises(shifted, a); math.Abs(d1-d2) > 1e-9 {
		t.Errorf("CvM not symmetric: %v vs %v", d1, d2)
	}
}

func TestEnergyDistanceProperties(t *testing.T) {
	a, same := twoSamples(7, 2000, 0)
	_, shifted := twoSamples(8, 2000, 1)
	eSame := EnergyDistance(a, same)
	eShift := EnergyDistance(a, shifted)
	if eSame < 0 || eShift < 0 {
		t.Fatalf("energy distance negative: %v %v", eSame, eShift)
	}
	if eShift < 20*eSame {
		t.Errorf("energy distance not discriminating: same=%v shifted=%v", eSame, eShift)
	}
	// Identical samples: exactly zero.
	xs := []float64{1, 2, 3, 4}
	if e := EnergyDistance(xs, xs); e > 1e-12 {
		t.Errorf("energy distance of identical samples = %v", e)
	}
	// Shift-by-c: E|X−Y| grows, within terms unchanged: for unit masses
	// at 0 vs 1, D = 2·1 − 0 − 0 = 2.
	if e := EnergyDistance([]float64{0, 0}, []float64{1, 1}); !almostEqual(e, 2, 1e-12) {
		t.Errorf("point-mass energy distance = %v, want 2", e)
	}
}

func TestEnergyDistanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 10; trial++ {
		na, nb := 3+rng.IntN(20), 3+rng.IntN(20)
		a := make([]float64, na)
		b := make([]float64, nb)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64() * 2
		}
		got := EnergyDistance(a, b)
		// Brute force O(n²).
		mean := func(xs, ys []float64) float64 {
			var s float64
			for _, x := range xs {
				for _, y := range ys {
					s += math.Abs(x - y)
				}
			}
			return s / float64(len(xs)*len(ys))
		}
		want := 2*mean(a, b) - mean(a, a) - mean(b, b)
		if want < 0 {
			want = 0
		}
		if !almostEqual(got, want, 1e-9) {
			t.Fatalf("trial %d: energy = %v, brute force = %v", trial, got, want)
		}
	}
}

func TestGoFPanicOnEmpty(t *testing.T) {
	for name, f := range map[string]func([]float64, []float64) float64{
		"AD":     AndersonDarling,
		"CvM":    CramerVonMises,
		"Energy": EnergyDistance,
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on empty input", name)
				}
			}()
			f(nil, []float64{1})
		}()
	}
}

func TestBootstrapMeanCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	lo, hi := BootstrapMeanCI(xs, 0.95, 500, rng.Float64)
	if !(lo < 10 && 10 < hi) {
		t.Errorf("CI [%v, %v] does not cover the true mean 10", lo, hi)
	}
	// Sanity: half-width close to 1.96/sqrt(400) ≈ 0.098.
	if hw := (hi - lo) / 2; hw < 0.05 || hw > 0.2 {
		t.Errorf("CI half-width = %v, expected ~0.1", hw)
	}
	// Larger samples tighten the interval.
	big := make([]float64, 6400)
	for i := range big {
		big[i] = 10 + rng.NormFloat64()
	}
	blo, bhi := BootstrapMeanCI(big, 0.95, 500, rng.Float64)
	if bhi-blo >= hi-lo {
		t.Errorf("CI did not tighten: %v vs %v", bhi-blo, hi-lo)
	}
}

func TestBootstrapMeanCIValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 14))
	for _, f := range []func(){
		func() { BootstrapMeanCI(nil, 0.95, 100, rng.Float64) },
		func() { BootstrapMeanCI([]float64{1}, 0, 100, rng.Float64) },
		func() { BootstrapMeanCI([]float64{1}, 1, 100, rng.Float64) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestHalfWidthRel(t *testing.T) {
	if got := HalfWidthRel(9, 11); !almostEqual(got, 0.1, 1e-12) {
		t.Errorf("HalfWidthRel = %v, want 0.1", got)
	}
	if !math.IsInf(HalfWidthRel(-1, 1), 1) {
		t.Error("zero midpoint should yield +Inf")
	}
}
