package stats

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Histogram is a fixed-bin histogram over [Lo, Hi). Values outside the
// range are clamped into the first/last bin, which matches how the
// paper's Histogram distribution representation treats outliers (the
// relative-time support is fixed across benchmarks).
type Histogram struct {
	Lo, Hi float64
	Counts []float64 // may hold fractional weights after normalization
}

// NewHistogram allocates a histogram with bins bins over [lo, hi).
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins < 1 {
		panic(fmt.Sprintf("stats: NewHistogram needs bins >= 1, got %d", bins))
	}
	if !(hi > lo) {
		panic(fmt.Sprintf("stats: NewHistogram needs hi > lo, got [%v, %v)", lo, hi))
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]float64, bins)}
}

// BinWidth returns the width of each bin.
func (h *Histogram) BinWidth() float64 { return (h.Hi - h.Lo) / float64(len(h.Counts)) }

// BinIndex returns the bin that x falls into, clamping out-of-range
// values to the boundary bins.
func (h *Histogram) BinIndex(x float64) int {
	i := int(math.Floor((x - h.Lo) / h.BinWidth()))
	if i < 0 {
		return 0
	}
	if i >= len(h.Counts) {
		return len(h.Counts) - 1
	}
	return i
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.Counts[h.BinIndex(x)]++ }

// AddAll records a whole sample.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// Total returns the sum of all bin weights.
func (h *Histogram) Total() float64 {
	return numeric.Sum(h.Counts)
}

// Normalized returns a copy whose bin weights sum to 1 (a discrete PDF).
// A histogram with zero total returns all-zero weights.
func (h *Histogram) Normalized() *Histogram {
	out := &Histogram{Lo: h.Lo, Hi: h.Hi, Counts: make([]float64, len(h.Counts))}
	t := h.Total()
	if t == 0 {
		return out
	}
	for i, c := range h.Counts {
		out.Counts[i] = c / t
	}
	return out
}

// Density returns the probability density value of bin i (normalized
// weight divided by bin width).
func (h *Histogram) Density(i int) float64 {
	t := h.Total()
	if t == 0 {
		return 0
	}
	return h.Counts[i] / t / h.BinWidth()
}

// BinCenters returns the center x-coordinate of every bin.
func (h *Histogram) BinCenters() []float64 {
	w := h.BinWidth()
	out := make([]float64, len(h.Counts))
	for i := range out {
		out[i] = h.Lo + (float64(i)+0.5)*w
	}
	return out
}

// HistogramFromSample builds and fills a histogram in one call.
func HistogramFromSample(xs []float64, lo, hi float64, bins int) *Histogram {
	h := NewHistogram(lo, hi, bins)
	h.AddAll(xs)
	return h
}

// SampleFromWeights draws n values distributed according to the
// histogram's (possibly unnormalized) bin weights, placing each draw
// uniformly within its bin. uniform must return values in [0, 1); two
// calls are consumed per draw. This inverts the paper's Histogram
// representation: a predicted bin vector becomes a concrete sample set
// whose ECDF can be compared with the measured one.
func (h *Histogram) SampleFromWeights(n int, uniform func() float64) []float64 {
	total := h.Total()
	if total <= 0 {
		panic("stats: SampleFromWeights on empty histogram")
	}
	w := h.BinWidth()
	out := make([]float64, n)
	for k := range out {
		u := uniform() * total
		var cum float64
		idx := len(h.Counts) - 1
		for i, c := range h.Counts {
			cum += c
			if u < cum {
				idx = i
				break
			}
		}
		out[k] = h.Lo + (float64(idx)+uniform())*w
	}
	return out
}
