package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.AddAll([]float64{0, 1.9, 2, 5.5, 9.99})
	want := []float64{2, 1, 1, 0, 1}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %v, want %v (counts %v)", i, h.Counts[i], w, h.Counts)
		}
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	h.Add(-5)
	h.Add(99)
	h.Add(1) // hi boundary clamps into last bin
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Errorf("clamping wrong: %v", h.Counts)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %v, want 3", h.Total())
	}
}

func TestHistogramNormalized(t *testing.T) {
	h := HistogramFromSample([]float64{1, 1, 3}, 0, 4, 4)
	n := h.Normalized()
	var sum float64
	for _, c := range n.Counts {
		sum += c
	}
	if !almostEqual(sum, 1, 1e-14) {
		t.Errorf("normalized total = %v, want 1", sum)
	}
	if !almostEqual(n.Counts[1], 2.0/3, 1e-14) {
		t.Errorf("normalized bin 1 = %v, want 2/3", n.Counts[1])
	}
	// Normalizing an empty histogram yields zeros, not NaN.
	empty := NewHistogram(0, 1, 3).Normalized()
	for _, c := range empty.Counts {
		if c != 0 {
			t.Errorf("empty normalized bin = %v, want 0", c)
		}
	}
}

func TestHistogramDensityIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(81, 82))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	h := HistogramFromSample(xs, -5, 5, 50)
	var integral float64
	for i := range h.Counts {
		integral += h.Density(i) * h.BinWidth()
	}
	if !almostEqual(integral, 1, 1e-12) {
		t.Errorf("density integral = %v, want 1", integral)
	}
}

func TestHistogramBinCenters(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	centers := h.BinCenters()
	want := []float64{0.125, 0.375, 0.625, 0.875}
	for i := range want {
		if !almostEqual(centers[i], want[i], 1e-14) {
			t.Errorf("center %d = %v, want %v", i, centers[i], want[i])
		}
	}
}

func TestHistogramSampleFromWeightsRecoversShape(t *testing.T) {
	// Build a bimodal histogram, sample from it, and verify the ECDFs agree.
	rng := rand.New(rand.NewPCG(91, 92))
	orig := make([]float64, 20000)
	for i := range orig {
		if rng.Float64() < 0.7 {
			orig[i] = rng.NormFloat64()*0.1 + 1
		} else {
			orig[i] = rng.NormFloat64()*0.1 + 2
		}
	}
	h := HistogramFromSample(orig, 0.5, 2.5, 40)
	resampled := h.SampleFromWeights(20000, rng.Float64)
	if d := KSStatistic(orig, resampled); d > 0.03 {
		t.Errorf("KS between original and histogram-resampled = %v, expected < 0.03", d)
	}
}

func TestHistogramSampleFromWeightsEmptyPanics(t *testing.T) {
	h := NewHistogram(0, 1, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for empty histogram")
		}
	}()
	h.SampleFromWeights(5, func() float64 { return 0.5 })
}

func TestSilvermanBandwidthPositive(t *testing.T) {
	rng := rand.New(rand.NewPCG(101, 102))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64() * 2
	}
	bw := SilvermanBandwidth(xs)
	if bw <= 0 {
		t.Fatalf("bandwidth = %v, want > 0", bw)
	}
	// Rough sanity: for n=500 normal(0,2), 0.9*2*500^-0.2 ≈ 0.52.
	if bw < 0.2 || bw > 1.0 {
		t.Errorf("bandwidth = %v, outside plausible range", bw)
	}
	// Constant sample falls back to a positive sliver.
	if bw := SilvermanBandwidth([]float64{5, 5, 5}); bw <= 0 {
		t.Errorf("degenerate bandwidth = %v, want > 0", bw)
	}
	if bw := SilvermanBandwidth([]float64{0, 0, 0}); bw <= 0 {
		t.Errorf("zero-sample bandwidth = %v, want > 0", bw)
	}
}

func TestKDEIntegratesToOne(t *testing.T) {
	rng := rand.New(rand.NewPCG(111, 112))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	k := NewKDE(xs)
	lo, hi := k.Support()
	n := 2000
	var integral float64
	step := (hi - lo) / float64(n)
	for i := 0; i <= n; i++ {
		x := lo + float64(i)*step
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		integral += w * k.At(x) * step
	}
	if math.Abs(integral-1) > 0.01 {
		t.Errorf("KDE integral = %v, want ~1", integral)
	}
}

func TestKDEPeakNearSampleMode(t *testing.T) {
	xs := []float64{1, 1.01, 0.99, 1.02, 0.98, 5}
	k := NewKDE(xs)
	if k.At(1) <= k.At(3) {
		t.Error("KDE should peak near the cluster at 1, not between clusters")
	}
}

func TestKDECountModes(t *testing.T) {
	rng := rand.New(rand.NewPCG(121, 122))
	// Unimodal.
	uni := make([]float64, 3000)
	for i := range uni {
		uni[i] = rng.NormFloat64() * 0.05
	}
	if got := NewKDE(uni).CountModes(512, 0.1); got != 1 {
		t.Errorf("unimodal CountModes = %d, want 1", got)
	}
	// Clearly bimodal.
	bi := make([]float64, 4000)
	for i := range bi {
		if i%2 == 0 {
			bi[i] = rng.NormFloat64()*0.03 + 1
		} else {
			bi[i] = rng.NormFloat64()*0.03 + 2
		}
	}
	if got := NewKDE(bi).CountModes(512, 0.1); got != 2 {
		t.Errorf("bimodal CountModes = %d, want 2", got)
	}
}

func TestKDEExplicitBandwidthValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive bandwidth")
		}
	}()
	NewKDEWithBandwidth([]float64{1, 2}, 0)
}

func TestQuantileKnown(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3, 2},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestQuantilesAndIQR(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	qs := Quantiles(xs, []float64{0.25, 0.5, 0.75})
	if !almostEqual(qs[0], 3, 1e-12) || !almostEqual(qs[1], 5, 1e-12) || !almostEqual(qs[2], 7, 1e-12) {
		t.Errorf("Quantiles = %v, want [3 5 7]", qs)
	}
	if got := IQR(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("IQR = %v, want 4", got)
	}
	if got := Median(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Median = %v, want 5", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = (%v, %v), want (-1, 7)", min, max)
	}
}

func TestSummarize(t *testing.T) {
	v := Summarize([]float64{1, 2, 3, 4, 5})
	if v.N != 5 || v.Min != 1 || v.Max != 5 || !almostEqual(v.Median, 3, 1e-12) || !almostEqual(v.Mean, 3, 1e-12) {
		t.Errorf("Summarize = %+v", v)
	}
	if v.String() == "" {
		t.Error("String should render")
	}
}
