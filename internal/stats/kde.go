package stats

import (
	"math"
)

// KDE is a Gaussian kernel density estimate over a sample — the smooth
// curve representation the paper uses to visualize every performance
// distribution (Figures 1, 3, 5, 9).
type KDE struct {
	sample    []float64
	Bandwidth float64
}

// SilvermanBandwidth returns Silverman's rule-of-thumb bandwidth
// 0.9 · min(σ, IQR/1.34) · n^{-1/5}, with fallbacks for degenerate
// samples (zero IQR or zero variance).
func SilvermanBandwidth(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: SilvermanBandwidth of empty sample")
	}
	sigma := StdDev(xs)
	iqr := IQR(xs) / 1.349
	spread := sigma
	if iqr > 0 && iqr < spread {
		spread = iqr
	}
	if spread <= 0 {
		// Degenerate sample: fall back to a sliver of the magnitude so
		// the KDE stays well-defined.
		m := math.Abs(Mean(xs))
		if m == 0 {
			m = 1
		}
		spread = 1e-3 * m
	}
	return 0.9 * spread * math.Pow(float64(len(xs)), -0.2)
}

// NewKDE builds a KDE with Silverman's bandwidth.
func NewKDE(xs []float64) *KDE {
	return NewKDEWithBandwidth(xs, SilvermanBandwidth(xs))
}

// NewKDEWithBandwidth builds a KDE with an explicit bandwidth (> 0).
func NewKDEWithBandwidth(xs []float64, bw float64) *KDE {
	if len(xs) == 0 {
		panic("stats: NewKDE of empty sample")
	}
	if bw <= 0 {
		panic("stats: KDE bandwidth must be positive")
	}
	return &KDE{sample: append([]float64(nil), xs...), Bandwidth: bw}
}

const invSqrt2Pi = 0.3989422804014327

// At evaluates the density estimate at x.
func (k *KDE) At(x float64) float64 {
	var s float64
	//lint:allow floatcheck both constructors reject non-positive bandwidths
	inv := 1 / k.Bandwidth
	for _, xi := range k.sample {
		u := (x - xi) * inv
		s += math.Exp(-0.5*u*u) * invSqrt2Pi
	}
	return s * inv / float64(len(k.sample))
}

// Evaluate computes the density on every point of grid.
func (k *KDE) Evaluate(grid []float64) []float64 {
	out := make([]float64, len(grid))
	for i, x := range grid {
		out[i] = k.At(x)
	}
	return out
}

// Support returns a plotting range [lo, hi] that covers the sample plus
// three bandwidths of margin on each side.
func (k *KDE) Support() (lo, hi float64) {
	lo, hi = MinMax(k.sample)
	return lo - 3*k.Bandwidth, hi + 3*k.Bandwidth
}

// CountModes estimates the number of modes of the density by evaluating
// it on a grid of gridN points and counting strict local maxima above
// relThreshold × the global maximum. It is used by the simulator's tests
// and by the experiment reports to check that predicted distributions
// recover multi-modality (one of the paper's qualitative claims).
func (k *KDE) CountModes(gridN int, relThreshold float64) int {
	lo, hi := k.Support()
	if gridN < 8 {
		gridN = 8
	}
	step := (hi - lo) / float64(gridN-1)
	ys := make([]float64, gridN)
	maxY := 0.0
	for i := range ys {
		ys[i] = k.At(lo + float64(i)*step)
		if ys[i] > maxY {
			maxY = ys[i]
		}
	}
	threshold := relThreshold * maxY
	modes := 0
	for i := 1; i < gridN-1; i++ {
		if ys[i] > ys[i-1] && ys[i] >= ys[i+1] && ys[i] >= threshold {
			modes++
		}
	}
	return modes
}
