package stats

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Mean returns the arithmetic mean of xs. It panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	return numeric.Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance of xs.
// It returns 0 for slices of length < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CentralMoment returns the k-th central moment (1/n)·Σ(x-mean)^k.
func CentralMoment(xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("stats: CentralMoment of empty slice")
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		s += math.Pow(x-m, float64(k))
	}
	return s / float64(len(xs))
}

// RawMoment returns the k-th raw moment (1/n)·Σx^k.
func RawMoment(xs []float64, k int) float64 {
	if len(xs) == 0 {
		panic("stats: RawMoment of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += math.Pow(x, float64(k))
	}
	return s / float64(len(xs))
}

// Skewness returns the standardized third central moment
// (population definition, g1 = m3 / m2^{3/2}), matching
// scipy.stats.skew with bias=True. Zero-variance data yields 0.
func Skewness(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Skewness of empty slice")
	}
	m2 := CentralMoment(xs, 2)
	if m2 <= 0 {
		return 0
	}
	m3 := CentralMoment(xs, 3)
	return m3 / math.Pow(m2, 1.5)
}

// Kurtosis returns the standardized fourth central moment
// (population definition, m4 / m2², *not* excess kurtosis), matching
// MATLAB's kurtosis() used by pearsrnd: the normal distribution has
// Kurtosis == 3. Zero-variance data yields 3 by convention (the value the
// Pearson system treats as "no information beyond normal").
func Kurtosis(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Kurtosis of empty slice")
	}
	m2 := CentralMoment(xs, 2)
	if m2 <= 0 {
		return 3
	}
	m4 := CentralMoment(xs, 4)
	return m4 / (m2 * m2)
}

// Moments4 bundles the first four standardized moments of a sample in the
// exact form the paper's feature vectors and distribution representations
// use: mean, standard deviation, skewness, and (non-excess) kurtosis.
type Moments4 struct {
	Mean, Std, Skew, Kurt float64
}

// ComputeMoments4 computes all four moments of xs in a single pass over
// the centered data.
func ComputeMoments4(xs []float64) Moments4 {
	if len(xs) == 0 {
		panic("stats: ComputeMoments4 of empty slice")
	}
	m := Mean(xs)
	var s2, s3, s4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		s2 += d2
		s3 += d2 * d
		s4 += d2 * d2
	}
	n := float64(len(xs))
	m2 := s2 / n
	out := Moments4{Mean: m, Kurt: 3}
	if len(xs) >= 2 {
		out.Std = math.Sqrt(s2 / (n - 1))
	}
	if m2 > 0 {
		out.Skew = (s3 / n) / math.Pow(m2, 1.5)
		out.Kurt = (s4 / n) / (m2 * m2)
	}
	return out
}

// Vector returns the moments as a 4-element feature slice in the fixed
// order [mean, std, skew, kurt].
func (m Moments4) Vector() []float64 { return []float64{m.Mean, m.Std, m.Skew, m.Kurt} }

// Moments4FromVector reverses Vector. It panics unless len(v) == 4.
func Moments4FromVector(v []float64) Moments4 {
	if len(v) != 4 {
		panic(fmt.Sprintf("stats: Moments4FromVector needs 4 values, got %d", len(v)))
	}
	return Moments4{Mean: v[0], Std: v[1], Skew: v[2], Kurt: v[3]}
}

// Feasible reports whether the (skew, kurt) pair satisfies the moment
// inequality kurt > skew² + 1 required of any real distribution, with a
// small slack used to reject boundary (two-point) cases the Pearson
// sampler cannot represent smoothly.
func (m Moments4) Feasible() bool {
	return m.Kurt > m.Skew*m.Skew+1+1e-9 && m.Std >= 0 &&
		!math.IsNaN(m.Mean) && !math.IsNaN(m.Std) && !math.IsNaN(m.Skew) && !math.IsNaN(m.Kurt)
}

// Normalize returns xs scaled by 1/mean(xs) — the paper's "relative time"
// transform, which puts every benchmark's run-time distribution on a
// common scale with mean 1. It panics if the mean is zero.
func Normalize(xs []float64) []float64 {
	m := Mean(xs)
	if m == 0 {
		panic("stats: Normalize with zero mean")
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / m
	}
	return out
}
