package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMeanKnown(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1}, 1},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
		{[]float64{2.5, 2.5, 2.5, 2.5}, 2.5},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEqual(got, c.want, 1e-14) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestMeanPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Mean(nil) did not panic")
		}
	}()
	Mean(nil)
}

func TestVarianceKnown(t *testing.T) {
	// Var([1..5], unbiased) = 2.5
	if got := Variance([]float64{1, 2, 3, 4, 5}); !almostEqual(got, 2.5, 1e-14) {
		t.Errorf("Variance = %v, want 2.5", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
	if got := Variance([]float64{4, 4, 4}); got != 0 {
		t.Errorf("Variance of constant = %v, want 0", got)
	}
}

func TestSkewnessSigns(t *testing.T) {
	rightSkewed := []float64{1, 1, 1, 1, 2, 2, 3, 10}
	leftSkewed := []float64{-10, -3, -2, -2, -1, -1, -1, -1}
	symmetric := []float64{-2, -1, 0, 1, 2}
	if Skewness(rightSkewed) <= 0 {
		t.Error("right-skewed sample has non-positive skewness")
	}
	if Skewness(leftSkewed) >= 0 {
		t.Error("left-skewed sample has non-negative skewness")
	}
	if got := Skewness(symmetric); !almostEqual(got, 0, 1e-12) {
		t.Errorf("symmetric sample skewness = %v, want 0", got)
	}
	if got := Skewness([]float64{5, 5, 5}); got != 0 {
		t.Errorf("constant sample skewness = %v, want 0", got)
	}
}

func TestKurtosisKnown(t *testing.T) {
	// Large normal sample: kurtosis (non-excess) should approach 3.
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 200000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	if got := Kurtosis(xs); math.Abs(got-3) > 0.1 {
		t.Errorf("normal kurtosis = %v, want ~3", got)
	}
	// Uniform sample: kurtosis = 9/5 = 1.8.
	for i := range xs {
		xs[i] = rng.Float64()
	}
	if got := Kurtosis(xs); math.Abs(got-1.8) > 0.05 {
		t.Errorf("uniform kurtosis = %v, want ~1.8", got)
	}
	if got := Kurtosis([]float64{2, 2}); got != 3 {
		t.Errorf("constant sample kurtosis = %v, want 3 by convention", got)
	}
}

func TestCentralAndRawMoments(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := RawMoment(xs, 1); !almostEqual(got, 2.5, 1e-14) {
		t.Errorf("RawMoment k=1 = %v", got)
	}
	if got := RawMoment(xs, 2); !almostEqual(got, 7.5, 1e-14) {
		t.Errorf("RawMoment k=2 = %v, want 7.5", got)
	}
	if got := CentralMoment(xs, 1); !almostEqual(got, 0, 1e-14) {
		t.Errorf("CentralMoment k=1 = %v, want 0", got)
	}
	if got := CentralMoment(xs, 2); !almostEqual(got, 1.25, 1e-14) {
		t.Errorf("CentralMoment k=2 = %v, want 1.25", got)
	}
}

func TestComputeMoments4MatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.IntN(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*float64(trial+1) + float64(trial)
		}
		m := ComputeMoments4(xs)
		if !almostEqual(m.Mean, Mean(xs), 1e-10) {
			t.Errorf("trial %d: Mean mismatch %v vs %v", trial, m.Mean, Mean(xs))
		}
		if !almostEqual(m.Std, StdDev(xs), 1e-10) {
			t.Errorf("trial %d: Std mismatch %v vs %v", trial, m.Std, StdDev(xs))
		}
		if !almostEqual(m.Skew, Skewness(xs), 1e-8) {
			t.Errorf("trial %d: Skew mismatch %v vs %v", trial, m.Skew, Skewness(xs))
		}
		if !almostEqual(m.Kurt, Kurtosis(xs), 1e-8) {
			t.Errorf("trial %d: Kurt mismatch %v vs %v", trial, m.Kurt, Kurtosis(xs))
		}
	}
}

func TestMoments4VectorRoundTrip(t *testing.T) {
	m := Moments4{Mean: 1, Std: 2, Skew: -0.5, Kurt: 4.2}
	got := Moments4FromVector(m.Vector())
	if got != m {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestMoments4Feasible(t *testing.T) {
	cases := []struct {
		m    Moments4
		want bool
	}{
		{Moments4{Mean: 1, Std: 0.1, Skew: 0, Kurt: 3}, true},
		{Moments4{Mean: 1, Std: 0.1, Skew: 2, Kurt: 5.5}, true},  // 5.5 > 4+1
		{Moments4{Mean: 1, Std: 0.1, Skew: 2, Kurt: 4.5}, false}, // below boundary
		{Moments4{Mean: 1, Std: 0.1, Skew: 0, Kurt: 1}, false},   // boundary (Bernoulli)
		{Moments4{Mean: 1, Std: -1, Skew: 0, Kurt: 3}, false},    // negative std
		{Moments4{Mean: math.NaN(), Std: 1, Skew: 0, Kurt: 3}, false},
	}
	for i, c := range cases {
		if got := c.m.Feasible(); got != c.want {
			t.Errorf("case %d: Feasible(%+v) = %v, want %v", i, c.m, got, c.want)
		}
	}
}

func TestNormalizeRelativeTime(t *testing.T) {
	xs := []float64{10, 20, 30}
	rel := Normalize(xs)
	if !almostEqual(Mean(rel), 1, 1e-14) {
		t.Errorf("normalized mean = %v, want 1", Mean(rel))
	}
	if !almostEqual(rel[0], 0.5, 1e-14) || !almostEqual(rel[2], 1.5, 1e-14) {
		t.Errorf("normalized values = %v", rel)
	}
}

// Property: mean is translation-equivariant and scale-equivariant.
func TestMeanAffineProperty(t *testing.T) {
	f := func(raw [6]float64, shift float64) bool {
		shift = math.Mod(shift, 100)
		xs := make([]float64, 6)
		for i := range xs {
			xs[i] = math.Mod(raw[i], 1000)
		}
		m := Mean(xs)
		shifted := make([]float64, len(xs))
		for i := range xs {
			shifted[i] = xs[i] + shift
		}
		return almostEqual(Mean(shifted), m+shift, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: skewness and kurtosis are invariant under positive affine maps.
func TestStandardizedMomentsAffineInvariant(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 12))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.IntN(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Exp(rng.NormFloat64())
		}
		a := 0.1 + rng.Float64()*10
		b := rng.NormFloat64() * 5
		ys := make([]float64, n)
		for i := range xs {
			ys[i] = a*xs[i] + b
		}
		if !almostEqual(Skewness(xs), Skewness(ys), 1e-7) {
			t.Errorf("trial %d: skewness not affine-invariant: %v vs %v", trial, Skewness(xs), Skewness(ys))
		}
		if !almostEqual(Kurtosis(xs), Kurtosis(ys), 1e-7) {
			t.Errorf("trial %d: kurtosis not affine-invariant: %v vs %v", trial, Kurtosis(xs), Kurtosis(ys))
		}
	}
}
