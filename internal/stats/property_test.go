package stats

import (
	"math"
	"testing"

	"repro/internal/randx"
)

// Property-based sweep: instead of asserting single hand-picked values,
// these tests draw many random sample pairs (deterministic seeds, so
// failures replay) and check the invariants the estimators must hold
// for any input — the same contract the paper's metric comparisons
// lean on.

// randomSample draws n values from one of a few shapes selected by the
// RNG itself, so the sweep covers unimodal, heavy-tailed, and discrete
// data without enumerating cases.
func randomSample(r *randx.RNG, n int) []float64 {
	xs := make([]float64, n)
	switch r.IntN(4) {
	case 0: // normal
		m, s := r.Uniform(-50, 50), r.Uniform(0.1, 10)
		for i := range xs {
			xs[i] = r.Normal(m, s)
		}
	case 1: // exponential (heavy right tail)
		rate := r.Uniform(0.05, 5)
		for i := range xs {
			xs[i] = r.Exponential(rate)
		}
	case 2: // uniform
		lo := r.Uniform(-100, 100)
		hi := lo + r.Uniform(0.01, 100)
		for i := range xs {
			xs[i] = r.Uniform(lo, hi)
		}
	default: // discrete with ties
		k := 1 + r.IntN(5)
		for i := range xs {
			xs[i] = float64(r.IntN(k))
		}
	}
	return xs
}

func TestKSStatisticRangeProperty(t *testing.T) {
	r := randx.New(0x5150)
	for trial := 0; trial < 200; trial++ {
		a := randomSample(r, 2+r.IntN(200))
		b := randomSample(r, 2+r.IntN(200))
		d := KSStatistic(a, b)
		if !(d >= 0 && d <= 1) {
			t.Fatalf("trial %d: KS = %v out of [0,1]", trial, d)
		}
		// KS(x, x) == 0, and KS is symmetric.
		if self := KSStatistic(a, a); self != 0 {
			t.Fatalf("trial %d: KS(a,a) = %v, want 0", trial, self)
		}
		if rev := KSStatistic(b, a); math.Abs(rev-d) > 1e-15 {
			t.Fatalf("trial %d: KS not symmetric: %v vs %v", trial, d, rev)
		}
	}
}

// TestKSShiftScaleInvariance: KS compares ranks, so applying one
// strictly increasing affine map to BOTH samples must leave it
// unchanged (exactly — the comparisons are order-based).
func TestKSShiftScaleInvariance(t *testing.T) {
	r := randx.New(77)
	for trial := 0; trial < 100; trial++ {
		a := randomSample(r, 5+r.IntN(100))
		b := randomSample(r, 5+r.IntN(100))
		shift := r.Uniform(-1e3, 1e3)
		scale := r.Uniform(1e-3, 1e3)
		mapped := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = x*scale + shift
			}
			return out
		}
		d0 := KSStatistic(a, b)
		d1 := KSStatistic(mapped(a), mapped(b))
		if math.Abs(d0-d1) > 1e-9 {
			t.Fatalf("trial %d: KS changed under affine map: %v -> %v (scale=%v shift=%v)",
				trial, d0, d1, scale, shift)
		}
	}
}

// TestWassersteinScaleCovariance: W1 is a distance in the sample's
// units — shifting both samples leaves it unchanged and scaling both
// scales it.
func TestWassersteinScaleCovariance(t *testing.T) {
	r := randx.New(4242)
	for trial := 0; trial < 100; trial++ {
		n := 5 + r.IntN(50)
		a := randomSample(r, n)
		b := randomSample(r, n)
		shift := r.Uniform(-100, 100)
		scale := r.Uniform(0.01, 100)
		mapped := func(xs []float64) []float64 {
			out := make([]float64, len(xs))
			for i, x := range xs {
				out[i] = x*scale + shift
			}
			return out
		}
		w0 := Wasserstein1(a, b)
		w1 := Wasserstein1(mapped(a), mapped(b))
		if w0 < 0 || w1 < 0 {
			t.Fatalf("trial %d: negative W1", trial)
		}
		tol := 1e-9 * (1 + math.Abs(w0)*scale)
		if math.Abs(w1-w0*scale) > tol {
			t.Fatalf("trial %d: W1 not scale-covariant: %v * %v != %v", trial, w0, scale, w1)
		}
	}
}

// TestHistogramNormalizedSumsToOne: any sample, any bin count — the
// normalized histogram is a probability mass function.
func TestHistogramNormalizedSumsToOne(t *testing.T) {
	r := randx.New(99)
	for trial := 0; trial < 100; trial++ {
		xs := randomSample(r, 1+r.IntN(400))
		lo, hi := MinMax(xs)
		if hi <= lo {
			hi = lo + 1
		}
		bins := 1 + r.IntN(64)
		h := HistogramFromSample(xs, lo, hi, bins).Normalized()
		sum := 0.0
		for _, c := range h.Counts {
			if c < 0 {
				t.Fatalf("trial %d: negative normalized bin %v", trial, c)
			}
			sum += c
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("trial %d: normalized mass = %v, want 1 (n=%d bins=%d)", trial, sum, len(xs), bins)
		}
		if h.Total() == 0 {
			t.Fatalf("trial %d: normalized histogram lost its mass", trial)
		}
	}
}

// TestMomentsRecoverKnownDistribution: sampling a distribution with
// analytic moments and estimating them must land within sampling
// error. The repo's Kurtosis is the non-excess m4/m2^2 form.
// Uniform(a,b): mean (a+b)/2, var (b-a)^2/12, skew 0, kurtosis 9/5;
// Exponential(rate): mean 1/rate, var 1/rate^2, skew 2, kurtosis 9.
func TestMomentsRecoverKnownDistribution(t *testing.T) {
	const n = 200_000
	r := randx.New(20260806)

	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Uniform(2, 10)
	}
	m := ComputeMoments4(xs)
	if math.Abs(m.Mean-6) > 0.02 {
		t.Errorf("uniform mean = %v, want 6±0.02", m.Mean)
	}
	wantStd := math.Sqrt(64.0 / 12.0)
	if math.Abs(m.Std-wantStd) > 0.02 {
		t.Errorf("uniform std = %v, want %v±0.02", m.Std, wantStd)
	}
	if math.Abs(m.Skew) > 0.03 {
		t.Errorf("uniform skew = %v, want 0±0.03", m.Skew)
	}
	if math.Abs(m.Kurt-1.8) > 0.05 {
		t.Errorf("uniform kurtosis = %v, want 1.8±0.05", m.Kurt)
	}

	for i := range xs {
		xs[i] = r.Exponential(0.5)
	}
	m = ComputeMoments4(xs)
	if math.Abs(m.Mean-2) > 0.03 {
		t.Errorf("exponential mean = %v, want 2±0.03", m.Mean)
	}
	if math.Abs(m.Std-2) > 0.05 {
		t.Errorf("exponential std = %v, want 2±0.05", m.Std)
	}
	if math.Abs(m.Skew-2) > 0.15 {
		t.Errorf("exponential skew = %v, want 2±0.15", m.Skew)
	}
	if math.Abs(m.Kurt-9) > 1.0 {
		t.Errorf("exponential kurtosis = %v, want 9±1", m.Kurt)
	}
}

// TestQuantilesMonotoneProperty: for any sample, quantiles at
// increasing probabilities never decrease and stay inside [min, max].
func TestQuantilesMonotoneProperty(t *testing.T) {
	r := randx.New(31337)
	probs := []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1}
	for trial := 0; trial < 100; trial++ {
		xs := randomSample(r, 1+r.IntN(300))
		qs := Quantiles(xs, probs)
		lo, hi := MinMax(xs)
		for i, q := range qs {
			if q < lo || q > hi {
				t.Fatalf("trial %d: q%v = %v outside [%v, %v]", trial, probs[i], q, lo, hi)
			}
			if i > 0 && q < qs[i-1] {
				t.Fatalf("trial %d: quantiles not monotone at %v: %v < %v", trial, probs[i], q, qs[i-1])
			}
		}
	}
}
