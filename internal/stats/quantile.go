package stats

import (
	"fmt"
	"sort"
)

// Quantile returns the q-th quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (NumPy's default "linear"
// method). xs need not be sorted; it is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	if q < 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile q=%v outside [0,1]", q))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted computes the linear-interpolation quantile of an already
// sorted slice.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(pos)
	if lo >= n-1 {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Quantiles returns the quantiles of xs at each probability in qs,
// sorting xs only once.
func Quantiles(xs []float64, qs []float64) []float64 {
	if len(xs) == 0 {
		panic("stats: Quantiles of empty slice")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		if q < 0 || q > 1 {
			panic(fmt.Sprintf("stats: Quantiles q=%v outside [0,1]", q))
		}
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// IQR returns the interquartile range (Q3 - Q1) of xs.
func IQR(xs []float64) float64 {
	qs := Quantiles(xs, []float64{0.25, 0.75})
	return qs[1] - qs[0]
}

// MinMax returns the smallest and largest values of xs.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}
