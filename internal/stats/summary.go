package stats

import "fmt"

// ViolinStats summarizes a score sample the way the paper's violin plots
// do: extremes, quartiles, median, and mean. The experiment drivers print
// one ViolinStats row per violin in Figures 4 and 6–8.
type ViolinStats struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean, Std                float64
}

// Summarize computes a ViolinStats from xs.
func Summarize(xs []float64) ViolinStats {
	if len(xs) == 0 {
		panic("stats: Summarize of empty sample")
	}
	qs := Quantiles(xs, []float64{0, 0.25, 0.5, 0.75, 1})
	return ViolinStats{
		N:      len(xs),
		Min:    qs[0],
		Q1:     qs[1],
		Median: qs[2],
		Q3:     qs[3],
		Max:    qs[4],
		Mean:   Mean(xs),
		Std:    StdDev(xs),
	}
}

// String renders the summary as a single aligned row.
func (v ViolinStats) String() string {
	return fmt.Sprintf("n=%-4d mean=%.3f std=%.3f min=%.3f q1=%.3f med=%.3f q3=%.3f max=%.3f",
		v.N, v.Mean, v.Std, v.Min, v.Q1, v.Median, v.Q3, v.Max)
}
