// Package viz renders the paper's figures as terminal graphics: kernel
// density curves (Figures 1, 3, 5, 9), overlaid predicted-vs-actual
// densities, violin summaries (Figures 4, 6, 7, 8), and aligned tables.
//
// It replaces the matplotlib layer of the original workflow with
// publication-shaped textual output suitable for logs and CI: every
// plot is a plain string of block characters, so figure reproductions
// diff cleanly and render anywhere a terminal does. The KDE and
// summary statistics behind the curves come from internal/stats; this
// package only draws.
package viz
