package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/numeric"
	"repro/internal/stats"
)

// DensityPlot renders the KDE of a sample as a fixed-size block-character
// curve with axis labels. width and height are in character cells.
func DensityPlot(sample []float64, width, height int, title string) string {
	k := stats.NewKDE(sample)
	lo, hi := k.Support()
	return densityPlotFromCurve(k.Evaluate(numeric.Linspace(lo, hi, width)), lo, hi, height, title)
}

// OverlayPlot renders two KDE curves (actual and predicted) in one
// frame, with '#' marking the actual curve, '*' the predicted curve, and
// '@' cells where both coincide — the textual equivalent of the paper's
// overlay figures.
func OverlayPlot(actual, predicted []float64, width, height int, title string) string {
	ka := stats.NewKDE(actual)
	kp := stats.NewKDE(predicted)
	la, ha := ka.Support()
	lp, hp := kp.Support()
	lo, hi := math.Min(la, lp), math.Max(ha, hp)
	grid := numeric.Linspace(lo, hi, width)
	ya := ka.Evaluate(grid)
	yp := kp.Evaluate(grid)
	maxY := 0.0
	for i := range ya {
		maxY = math.Max(maxY, math.Max(ya[i], yp[i]))
	}
	if maxY == 0 {
		maxY = 1
	}
	cells := make([][]byte, height)
	for r := range cells {
		cells[r] = []byte(strings.Repeat(" ", width))
	}
	put := func(col int, y float64, ch byte) {
		level := int(y / maxY * float64(height-1))
		if level < 0 {
			level = 0
		}
		if level > height-1 {
			level = height - 1
		}
		row := height - 1 - level
		switch {
		case cells[row][col] == ' ':
			cells[row][col] = ch
		case cells[row][col] != ch:
			cells[row][col] = '@'
		}
	}
	for c := 0; c < width; c++ {
		put(c, ya[c], '#')
		put(c, yp[c], '*')
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, row := range cells {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %-10.3f%s%10.3f\n", lo, center("relative time", width-20), hi)
	b.WriteString(" legend: # actual   * predicted   @ overlap\n")
	return b.String()
}

func densityPlotFromCurve(ys []float64, lo, hi float64, height int, title string) string {
	width := len(ys)
	maxY := 0.0
	for _, y := range ys {
		if y > maxY {
			maxY = y
		}
	}
	if maxY == 0 {
		maxY = 1
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	levels := []rune(" .:-=+*#%@")
	for r := height - 1; r >= 0; r-- {
		b.WriteString("|")
		for _, y := range ys {
			frac := y / maxY * float64(height)
			fill := frac - float64(r)
			switch {
			case fill <= 0:
				b.WriteRune(' ')
			case fill >= 1:
				b.WriteRune(levels[len(levels)-1])
			default:
				b.WriteRune(levels[1+int(fill*float64(len(levels)-2))])
			}
		}
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " %-10.3f%s%10.3f\n", lo, center("relative time", width-20), hi)
	return b.String()
}

func center(s string, width int) string {
	if width < len(s) {
		return s
	}
	pad := width - len(s)
	return strings.Repeat(" ", pad/2) + s + strings.Repeat(" ", pad-pad/2)
}

// Violin renders one horizontal text violin: a box-and-whisker row where
// the glyph density sketches the distribution of the values over [lo, hi].
func Violin(values []float64, lo, hi float64, width int) string {
	if width < 10 {
		width = 10
	}
	// Bin the values and map counts onto glyph thickness.
	h := stats.HistogramFromSample(values, lo, hi, width)
	maxC := 0.0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC == 0 {
		maxC = 1
	}
	glyphs := []rune(" .-=≡#")
	var b strings.Builder
	for _, c := range h.Counts {
		idx := int(c / maxC * float64(len(glyphs)-1))
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// ViolinRow renders a labeled violin with its summary statistics — the
// textual analog of one violin in the paper's Figures 4 and 6–8.
func ViolinRow(label string, values []float64, lo, hi float64, width int) string {
	v := stats.Summarize(values)
	return fmt.Sprintf("%-28s [%s] mean=%.3f med=%.3f q1=%.3f q3=%.3f",
		label, Violin(values, lo, hi, width), v.Mean, v.Median, v.Q1, v.Q3)
}

// Table renders rows with aligned columns; the first row is treated as a
// header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell + strings.Repeat(" ", widths[c]-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}
