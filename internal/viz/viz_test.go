package viz

import (
	"strings"
	"testing"

	"repro/internal/randx"
)

func normalSample(n int) []float64 {
	r := randx.New(1)
	out := make([]float64, n)
	for i := range out {
		out[i] = r.Normal(1, 0.05)
	}
	return out
}

func TestDensityPlotShape(t *testing.T) {
	p := DensityPlot(normalSample(2000), 60, 10, "test")
	lines := strings.Split(strings.TrimRight(p, "\n"), "\n")
	// title + height rows + axis + labels.
	if len(lines) != 1+10+1+1 {
		t.Fatalf("line count = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "test") {
		t.Errorf("missing title: %q", lines[0])
	}
	for _, l := range lines[1:11] {
		if !strings.HasPrefix(l, "|") {
			t.Errorf("plot row missing axis: %q", l)
		}
		if len([]rune(l)) != 61 {
			t.Errorf("row width = %d, want 61", len([]rune(l)))
		}
	}
	// The peak row must contain dense glyphs.
	if !strings.ContainsAny(p, "#%@") {
		t.Error("plot has no dense glyphs at the peak")
	}
}

func TestOverlayPlotLegendAndGlyphs(t *testing.T) {
	actual := normalSample(1500)
	r := randx.New(2)
	predicted := make([]float64, 1500)
	for i := range predicted {
		predicted[i] = r.Normal(1.02, 0.06)
	}
	p := OverlayPlot(actual, predicted, 60, 12, "overlay")
	if !strings.Contains(p, "#") || !strings.Contains(p, "*") {
		t.Error("overlay missing one of the curves")
	}
	if !strings.Contains(p, "legend") {
		t.Error("overlay missing legend")
	}
}

func TestOverlayPlotIdenticalSamplesOverlap(t *testing.T) {
	s := normalSample(1000)
	p := OverlayPlot(s, s, 50, 10, "")
	if !strings.Contains(p, "@") {
		t.Error("identical curves should produce overlap glyphs")
	}
}

func TestViolinWidthAndGlyphs(t *testing.T) {
	r := randx.New(3)
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = r.Uniform(0.2, 0.3)
	}
	v := Violin(vals, 0, 1, 40)
	if len([]rune(v)) != 40 {
		t.Fatalf("violin width = %d, want 40", len([]rune(v)))
	}
	// Mass concentrated near 25% of the axis.
	runes := []rune(v)
	if runes[10] == ' ' {
		t.Error("expected mass near position 10")
	}
	if runes[35] != ' ' {
		t.Error("expected emptiness near position 35")
	}
	if got := Violin(vals, 0, 1, 5); len([]rune(got)) != 10 {
		t.Errorf("minimum width not enforced: %d", len([]rune(got)))
	}
}

func TestViolinRow(t *testing.T) {
	row := ViolinRow("kNN/PearsonRnd", []float64{0.1, 0.2, 0.3}, 0, 1, 30)
	if !strings.Contains(row, "kNN/PearsonRnd") || !strings.Contains(row, "mean=0.200") {
		t.Errorf("row = %q", row)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"name", "ks"},
		{"benchmark-with-long-name", "0.241"},
		{"b", "0.3"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("line count = %d", len(lines))
	}
	if !strings.Contains(lines[0], "name") || !strings.Contains(lines[2], "0.241") {
		t.Errorf("table content wrong:\n%s", out)
	}
	// Columns aligned: "ks" column starts at the same offset in all rows.
	idx0 := strings.Index(lines[0], "ks")
	idx2 := strings.Index(lines[2], "0.241")
	if idx0 != idx2 {
		t.Errorf("columns not aligned: %d vs %d", idx0, idx2)
	}
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
}
